package ripsrt

import (
	"rips/internal/invariant"
	"rips/internal/sim"
	"rips/internal/task"
	"rips/internal/topo"
)

// systemPhase runs one system phase with the machine's scheduler.
func (st *nodeState) systemPhase() int { return st.sched.phase(st) }

// newPhaseScheduler picks the scheduling algorithm matching the
// machine topology.
func newPhaseScheduler(t topo.Topology, id int, exactCube bool) phaseScheduler {
	switch tt := t.(type) {
	case *topo.Mesh:
		return newMeshSched(tt, id)
	case *topo.Tree:
		return newTreeSched(tt, id)
	case *topo.Hypercube:
		if exactCube {
			return newCubeWalkSched(tt, id)
		}
		return newCubeSched(tt, id)
	default:
		invariant.Violated("ripsrt: no system-phase scheduler for %s", t.Name())
		return nil
	}
}

// phaseScheduler is the distributed scheduling algorithm run by every
// node during a system phase. Implementations exist for the mesh (the
// paper's Mesh Walking Algorithm), the binary tree (the Tree Walking
// Algorithm of ref [25]) and the hypercube (incremental Dimension
// Exchange) — the generality the paper claims via ref [32].
type phaseScheduler interface {
	// phase cooperatively reschedules all tasks in st.rts across the
	// machine and returns the global task total T.
	phase(st *nodeState) int
}

// meshSched is the message-passing Mesh Walking Algorithm (Figure 3).
type meshSched struct {
	mesh *topo.Mesh
	i, j int
}

func newMeshSched(m *topo.Mesh, id int) *meshSched {
	i, j := m.Coord(id)
	return &meshSched{mesh: m, i: i, j: j}
}

// phase runs one message-passing round of the Mesh Walking Algorithm
// across all nodes, returning the global task total T. Every node must
// enter it; the per-link messages below realize exactly the data flow
// of the pure algorithm in internal/sched/mwa, against which this
// implementation is cross-validated in tests.
func (ms *meshSched) phase(st *nodeState) int {
	n := st.n
	mesh := ms.mesh
	n1, n2 := mesh.Rows(), mesh.Cols()
	i, j := ms.i, ms.j
	st.overhead(st.costs.PerPhase)

	// All tasks become schedulable: leftover RTE tasks are re-scheduled
	// together with the newly generated ones (paper Section 2).
	st.rts.PushAll(st.rte.Drain())
	w := st.rts.Len()
	st.ownTaken = 0

	// Step 1: scan the partial load vector along each row. Node (i,j)
	// ends up holding w_{i,0..j}.
	var wvec []int
	if j == 0 {
		wvec = []int{w}
	} else {
		m := n.RecvFrom(mesh.ID(i, j-1), tagScanW)
		prev := m.Data.(scanWMsg).w
		wvec = make([]int, 0, j+1)
		wvec = append(wvec, prev...)
		wvec = append(wvec, w)
	}
	if j < n2-1 {
		n.SendTag(mesh.ID(i, j+1), tagScanW, scanWMsg{w: wvec}, 8*len(wvec)+8)
	}
	st.overhead(st.costs.PerElem * sim.Time(len(wvec)))

	// Step 2: rightmost column computes row sums s_i and the
	// scan-with-sum t_i; node (n1-1, n2-1) derives wavg and R and
	// broadcasts them; (s_i, t_i, t_{i-1}) spread along each row.
	var s, t, tPrev int
	if j == n2-1 {
		for _, x := range wvec {
			s += x
		}
		if i > 0 {
			tPrev = n.RecvFrom(mesh.ID(i-1, j), tagColT).Data.(int)
		}
		t = tPrev + s
		if i < n1-1 {
			n.SendTag(mesh.ID(i+1, j), tagColT, t, 8)
		}
	}
	var bc bcastMsg
	if n.ID() == n.N()-1 {
		bc = bcastMsg{avg: t / n.N(), rem: t % n.N(), total: t}
	}
	bc = st.comm.Bcast(n.N()-1, bc, 24).(bcastMsg)
	if j == n2-1 {
		if j > 0 {
			n.SendTag(mesh.ID(i, j-1), tagSpread, spreadMsg{s: s, t: t, tPrev: tPrev}, 24)
		}
	} else {
		sp := n.RecvFrom(mesh.ID(i, j+1), tagSpread).Data.(spreadMsg)
		s, t, tPrev = sp.s, sp.t, sp.tPrev
		if j > 0 {
			n.SendTag(mesh.ID(i, j-1), tagSpread, sp, 24)
		}
	}

	st.phase++
	if bc.total == 0 {
		return 0
	}

	// Step 3: per-node quotas for this row's prefix, and the row
	// accumulation quotas Q_i, Q_{i-1}.
	qrow := make([]int, j+1)
	for k := 0; k <= j; k++ {
		qrow[k] = bc.avg
		if mesh.ID(i, k) < bc.rem {
			qrow[k]++
		}
	}
	y := t - ms.rowQuota(i, bc)
	x := 0
	if i > 0 {
		x = tPrev - ms.rowQuota(i-1, bc)
	}
	st.overhead(st.costs.PerElem * sim.Time(j+1))

	// Step 4: vertical balancing. Downward direction first (receive
	// from above, then send down), then upward — mirroring the pure
	// algorithm's two passes.
	if x > 0 {
		vm := n.RecvFrom(mesh.ID(i-1, j), tagDown).Data.(vertMsg)
		st.acceptTasks(vm.tasks)
		for k := 0; k <= j; k++ {
			wvec[k] += vm.vec[k]
		}
	}
	if y > 0 {
		d := st.exportVector(wvec, qrow, y)
		bundle := st.takeTasks(d[j])
		n.SendTag(mesh.ID(i+1, j), tagDown, vertMsg{tasks: bundle, vec: d}, sizeOfTasks(bundle)+8*len(d))
		for k := 0; k <= j; k++ {
			wvec[k] -= d[k]
		}
	}
	if y < 0 {
		vm := n.RecvFrom(mesh.ID(i+1, j), tagUp).Data.(vertMsg)
		st.acceptTasks(vm.tasks)
		for k := 0; k <= j; k++ {
			wvec[k] += vm.vec[k]
		}
	}
	if x < 0 {
		u := st.exportVector(wvec, qrow, -x)
		bundle := st.takeTasks(u[j])
		n.SendTag(mesh.ID(i-1, j), tagUp, vertMsg{tasks: bundle, vec: u}, sizeOfTasks(bundle)+8*len(u))
		for k := 0; k <= j; k++ {
			wvec[k] -= u[k]
		}
	}

	// Step 5: horizontal balancing within the row. The boundary right
	// of column j carries v rightward (or -v leftward).
	z := 0
	for k := 0; k < j; k++ {
		z += wvec[k] - qrow[k]
	}
	v := z + wvec[j] - qrow[j]
	st.overhead(st.costs.PerElem * sim.Time(j+1))
	if z > 0 {
		hm := n.RecvFrom(mesh.ID(i, j-1), tagRight).Data.(horzMsg)
		st.acceptTasks(hm.tasks)
	}
	if v > 0 {
		bundle := st.takeTasks(v)
		n.SendTag(mesh.ID(i, j+1), tagRight, horzMsg{tasks: bundle}, sizeOfTasks(bundle))
	}
	if v < 0 {
		hm := n.RecvFrom(mesh.ID(i, j+1), tagLeft).Data.(horzMsg)
		st.acceptTasks(hm.tasks)
	}
	if z < 0 {
		bundle := st.takeTasks(-z)
		n.SendTag(mesh.ID(i, j-1), tagLeft, horzMsg{tasks: bundle}, sizeOfTasks(bundle))
	}

	// The schedule is complete: this node must hold exactly its quota
	// (Theorem 1), and it must not have exported more resident tasks
	// than its surplus (Theorem 2). Anything else is a protocol bug,
	// not a runtime condition.
	got := st.rts.Len() + len(st.inbox)
	invariant.BalancedWithinOne(got, bc.total, n.N(), n.ID(), "ripsrt: mesh system phase")
	invariant.Locality(st.ownTaken, w-qrow[j], "ripsrt: mesh system phase")
	st.rte.PushAll(st.rts.Drain())
	st.rte.PushAll(st.inbox)
	st.inbox = nil
	return bc.total
}

// rowQuota returns Q_i, the accumulated quota of rows 0..i.
func (ms *meshSched) rowQuota(i int, bc bcastMsg) int {
	n2 := ms.mesh.Cols()
	r := (i + 1) * n2
	if r > bc.rem {
		r = bc.rem
	}
	return bc.avg*n2*(i+1) + r
}

// exportVector runs Figure 3's delta/eta/gamma recurrence over this
// node's row prefix, returning how many tasks each column k <= j
// contributes to the row's vertical export of y tasks.
func (st *nodeState) exportVector(wvec, qrow []int, y int) []int {
	d := make([]int, len(wvec))
	eta, gamma := y, 0
	for k := range wvec {
		delta := wvec[k] - qrow[k]
		switch {
		case delta > eta+gamma:
			d[k] = eta
		case delta > gamma:
			d[k] = delta - gamma
		}
		gamma -= delta - d[k]
		eta -= d[k]
	}
	st.overhead(st.costs.PerElem * sim.Time(len(wvec)))
	return d
}

// takeTasks removes count tasks for migration, preferring tasks that
// arrived earlier in this same system phase (forwarding in-transit
// tasks keeps resident ones home — the locality argument of Theorem 2).
func (st *nodeState) takeTasks(count int) []task.Task {
	if count < 0 {
		invariant.Violated("ripsrt: takeTasks(%d)", count)
	}
	out := make([]task.Task, 0, count)
	for count > 0 && len(st.inbox) > 0 {
		out = append(out, st.inbox[len(st.inbox)-1])
		st.inbox = st.inbox[:len(st.inbox)-1]
		count--
	}
	if count > 0 {
		own := st.rts.TakeBack(count)
		if len(own) != count {
			invariant.Violated("ripsrt: node %d short %d tasks for migration", st.n.ID(), count-len(own))
		}
		st.ownTaken += len(own)
		out = append(out, own...)
	}
	st.n.Count(CounterMigrated, int64(len(out)))
	st.overhead(st.costs.PerTask * sim.Time(len(out)))
	return out
}

// acceptTasks files tasks received during the system phase.
func (st *nodeState) acceptTasks(ts []task.Task) {
	st.inbox = append(st.inbox, ts...)
	st.overhead(st.costs.PerTask * sim.Time(len(ts)))
}
