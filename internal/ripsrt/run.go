package ripsrt

import (
	"errors"
	"fmt"

	"rips/internal/app"
	"rips/internal/collective"
	"rips/internal/invariant"
	"rips/internal/metrics"
	"rips/internal/sim"
	"rips/internal/task"
)

// Counter names exported in Result.Sim.Counters.
const (
	CounterGenerated = "rips.generated" // tasks created (roots + children)
	CounterExecuted  = "rips.executed"  // tasks executed
	CounterNonlocal  = "rips.nonlocal"  // tasks executed away from their origin
	CounterMigrated  = "rips.migrated"  // task·link transfers in system phases
	CounterPhases    = "rips.phases"    // system phases (counted once, at node 0)
	CounterAppResult = "rips.appresult" // aggregated app.Counted contributions
)

// Result of a RIPS run.
type Result struct {
	// Sim carries the raw simulation outcome (per-node clocks,
	// message counts, counters).
	Sim sim.Result
	// Time is the parallel execution time T.
	Time sim.Time
	// Overhead and Idle are the per-node averages of system overhead
	// Th and idle time Ti (the paper's Table I columns).
	Overhead, Idle sim.Time
	// Task accounting (see the Counter* names).
	Generated, Executed, Nonlocal, Migrated int64
	// Phases is the number of system phases executed.
	Phases int64
	// AppResult is the aggregated application result of Counted apps
	// (e.g. solutions found); 0 for apps without result counting.
	AppResult int64
	// VirtualWork is the summed virtual compute time reported by
	// Execute across all nodes. It must equal the sequential profile's
	// Work for any machine and policy — the same cross-backend
	// identity internal/par.Result.VirtualWork is checked against.
	VirtualWork sim.Time
	// PhaseTotals is the global task total T observed by each system
	// phase in order — the expansion/collapse curve of the workload
	// (the final entries are the zero-total phases that detect round
	// boundaries and termination).
	PhaseTotals []int
	// Canceled reports that the run was aborted through Config.Cancel.
	// All other fields then describe only the work completed before the
	// abort, and Executed may be less than Generated.
	Canceled bool
}

// Run executes the workload under RIPS on the configured mesh.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	simCfg := sim.Config{
		Topo:      cfg.machineTopo(),
		Latency:   cfg.latency(),
		Seed:      cfg.Seed,
		MaxEvents: cfg.MaxEvents,
		Cancel:    cfg.Cancel,
	}
	var phaseTotals []int
	sr, err := sim.Run(simCfg, func(n *sim.Node) { nodeMain(n, &cfg, &phaseTotals) })
	if err != nil && !errors.Is(err, sim.ErrCanceled) {
		return Result{}, err
	}
	res := Result{
		Sim:       sr,
		Time:      sr.End,
		Generated: sr.Counters[CounterGenerated],
		Executed:  sr.Counters[CounterExecuted],
		Nonlocal:  sr.Counters[CounterNonlocal],
		Migrated:  sr.Counters[CounterMigrated],
		Phases:    sr.Counters[CounterPhases],
		AppResult: sr.Counters[CounterAppResult],
	}
	res.PhaseTotals = phaseTotals
	if err != nil {
		// Canceled: assemble what the run did accomplish, but skip the
		// conservation and locality invariants — the abandoned tasks are
		// a consequence of the abort, not a scheduler bug.
		res.Canceled = true
		var oh, idle sim.Time
		for _, st := range sr.Nodes {
			oh += st.Overhead
			res.VirtualWork += st.Busy
			idle += st.Idle + (sr.End - st.Finish)
		}
		n := sim.Time(cfg.machineTopo().Size())
		res.Overhead, res.Idle = oh/n, idle/n
		return res, err
	}
	n := int64(cfg.machineTopo().Size())
	var oh, idle sim.Time
	for _, st := range sr.Nodes {
		oh += st.Overhead
		// Node busy time is exactly the virtual compute charged by
		// Execute (Node.Compute), so the sum is the run's virtual work.
		res.VirtualWork += st.Busy
		// Everything between a node's finish and the end of the run is
		// waiting on others: count it as idle, like the node-local idle.
		idle += st.Idle + (sr.End - st.Finish)
	}
	res.Overhead = oh / sim.Time(n)
	res.Idle = idle / sim.Time(n)
	// Run-level invariants: every nonlocally executed task crossed at
	// least one link, and a terminated run must have executed exactly
	// what it generated (task conservation across all system phases —
	// also surfaced as an error below for gated builds).
	invariant.Check(res.Nonlocal <= res.Migrated,
		"ripsrt: %d nonlocal executions but only %d task migrations", res.Nonlocal, res.Migrated)
	invariant.Conserved(int(res.Generated), int(res.Executed), "ripsrt: run")
	if res.Executed != res.Generated {
		return res, fmt.Errorf("ripsrt: executed %d of %d generated tasks", res.Executed, res.Generated)
	}
	return res, nil
}

// nodeState is the per-node runtime state.
type nodeState struct {
	n     *sim.Node
	cfg   *Config
	costs Costs
	sched phaseScheduler
	rte   task.Queue  // ready to execute
	rts   task.Queue  // ready to schedule (eager) / staging (system phase)
	inbox []task.Task // tasks received during the current system phase
	// ownTaken counts this node's resident tasks exported during the
	// current system phase (reset at phase start); the Theorem 2
	// locality invariant bounds it by the node's surplus over quota.
	ownTaken int
	phase    int // completed system phases
	round    int
	seq      uint64
	comm     *collective.Comm
	// periodic detector
	nextCheck sim.Time
}

// nodeMain roots the hotpath map-iteration proof for the simulated
// backend: everything a node program reaches must iterate no map (the
// simulator allocates and blocks by design, so only the determinism
// criterion applies here).
//
//ripslint:hotpath map
func nodeMain(n *sim.Node, cfg *Config, phaseTotals *[]int) {
	st := &nodeState{
		n:     n,
		cfg:   cfg,
		costs: cfg.costs(),
		sched: newPhaseScheduler(cfg.machineTopo(), n.ID(), cfg.ExactCube),
		comm:  &collective.Comm{Node: n, TagBase: tagColl},
	}
	st.nextCheck = cfg.Period
	st.loadRoots(0)
	for {
		total := st.systemPhase()
		if n.ID() == 0 {
			n.Count(CounterPhases, 1)
			// Only node 0 appends, and node programs run one at a
			// time, so this is race-free.
			*phaseTotals = append(*phaseTotals, total)
			if cfg.OnPhase != nil {
				// Moved is not globally observable at a single node of
				// the message-passing protocol; only the run total is.
				cfg.OnPhase(metrics.PhaseInfo{
					Phase:       int64(len(*phaseTotals)),
					Round:       st.round,
					Tasks:       total,
					VirtualTime: n.Now(),
				})
			}
		}
		if total == 0 {
			st.round++
			if st.round >= cfg.App.Rounds() {
				return
			}
			st.loadRoots(st.round)
			continue
		}
		st.userPhase()
	}
}

func (st *nodeState) overhead(d sim.Time) { st.n.Overhead(d) }

func (st *nodeState) newID() uint64 {
	st.seq++
	return uint64(st.n.ID())<<40 | st.seq
}

// loadRoots stages this node's share of a round's root tasks (the
// paper's "initial tasks", scheduled by the first system phase). Apps
// without BlockDistributed start entirely at node 0; block-distributed
// apps (GROMOS) start with each node owning its slice.
func (st *nodeState) loadRoots(round int) {
	roots := st.cfg.App.Roots(round)
	lo, hi := 0, len(roots)
	if app.RootsDistributed(st.cfg.App) {
		lo, hi = app.RootBlock(len(roots), st.n.N(), st.n.ID())
	} else if st.n.ID() != 0 {
		return
	}
	for _, sp := range roots[lo:hi] {
		st.rts.PushBack(task.Task{ID: st.newID(), Origin: st.n.ID(), Size: sp.Size, Data: sp.Data})
	}
	st.n.Count(CounterGenerated, int64(hi-lo))
	st.overhead(sim.Time(hi-lo) * st.costs.PerEnqueue)
}

// execute runs one task and files its children per the local policy.
func (st *nodeState) execute(tk task.Task) {
	n := st.n
	if tk.Origin != n.ID() {
		n.Count(CounterNonlocal, 1)
	}
	n.Count(CounterExecuted, 1)
	var children []task.Task
	work, res := app.ExecuteCount(st.cfg.App, tk.Data, func(sp app.Spawn) {
		children = append(children, task.Task{ID: st.newID(), Origin: n.ID(), Size: sp.Size, Data: sp.Data})
	})
	if res != 0 {
		n.Count(CounterAppResult, res)
	}
	n.Compute(work)
	if len(children) > 0 {
		st.overhead(sim.Time(len(children)) * st.costs.PerEnqueue)
		n.Count(CounterGenerated, int64(len(children)))
		if st.cfg.Local == Eager {
			st.rts.PushAll(children)
		} else {
			st.rte.PushAll(children)
		}
	}
}

// userPhase dispatches on the configured detector and global policy.
func (st *nodeState) userPhase() {
	st.overhead(st.costs.PerPhase)
	switch {
	case st.cfg.Detector == Periodic:
		st.userPhasePeriodic()
	case st.cfg.Global == All:
		st.userPhaseAll()
	default:
		st.userPhaseAny()
	}
}

// userPhaseAny implements the ANY policy: the first node to drain its
// RTE queue broadcasts an init signal carrying the phase index;
// duplicate inits for the same phase are dropped. A node holding tasks
// executes at least one before honouring an init, which both matches
// the paper ("the idle processor must wait until every processor
// finishes the current task execution") and guarantees progress.
func (st *nodeState) userPhaseAny() {
	n := st.n
	executed := false
	initSeen := false
	for {
		for {
			m, ok := n.TryRecvTag(tagInit)
			if !ok {
				break
			}
			initSeen = st.handleInit(m, initSeen)
		}
		if initSeen && (executed || st.rte.Empty()) {
			return
		}
		if tk, ok := st.rte.PopFront(); ok {
			st.execute(tk)
			executed = true
			continue
		}
		// Local condition met and no init seen: back off briefly (with
		// an id-proportional jitter so the lowest drained node usually
		// initiates alone), then become the initiator.
		jitter := st.cfg.initBackoff() / 4 * sim.Time(n.ID()) / sim.Time(n.N())
		deadline := n.Now() + st.cfg.initBackoff() + jitter
		for n.Now() < deadline {
			m, ok := n.RecvTagTimeout(tagInit, deadline-n.Now())
			if !ok {
				break
			}
			if st.handleInit(m, false) {
				return // someone else initiated this phase (relayed above)
			}
		}
		st.overhead(st.costs.PerPhase)
		st.relayInit(initMsg{phase: st.phase, root: n.ID()})
		return
	}
}

// handleInit processes one tagInit message under the ANY policy: the
// first copy for the current phase is relayed down the initiator's
// broadcast tree; older phases' copies are redundant and dropped.
// Returns the updated initSeen.
func (st *nodeState) handleInit(m sim.Message, initSeen bool) bool {
	im := m.Data.(initMsg)
	if im.phase != st.phase {
		return initSeen
	}
	if !initSeen {
		st.relayInit(im)
	}
	return true
}

// relayInit forwards an init announcement to this node's children in
// the binomial broadcast tree rooted at the initiator, giving O(log N)
// propagation with no O(N) hotspot at the initiator. (The paper notes
// hardware support — the Cray T3D's eureka or-barrier — as the ideal
// implementation; a software combining tree is the portable one.)
func (st *nodeState) relayInit(im initMsg) {
	n := st.n
	if st.cfg.Eureka {
		// Hardware or-barrier: only the initiator signals; there is
		// nothing to relay.
		if im.root == n.ID() {
			n.Broadcast(tagInit, im, 16, st.cfg.eurekaLatency())
		}
		return
	}
	size := n.N()
	rel := (n.ID() - im.root + size) % size
	low := rel & (-rel)
	if rel == 0 {
		low = 0
	}
	for bit := 1; rel+bit < size; bit <<= 1 {
		if low != 0 && bit >= low {
			break
		}
		n.SendTag((rel+bit+im.root)%size, tagInit, im, 16)
	}
}

// allTreeChildren returns this node's children in the fixed binary
// reduction tree rooted at node 0 used by the ALL policy.
func (st *nodeState) allTreeChildren() []int {
	var out []int
	if c := 2*st.n.ID() + 1; c < st.n.N() {
		out = append(out, c)
	}
	if c := 2*st.n.ID() + 2; c < st.n.N() {
		out = append(out, c)
	}
	return out
}

// userPhaseAll implements the ALL policy: a node sends a ready signal
// to its tree parent once its own RTE queue is empty and a ready has
// arrived from each child; when the root completes, it broadcasts init
// down the same tree.
func (st *nodeState) userPhaseAll() {
	n := st.n
	children := st.allTreeChildren()
	childReady := 0
	readySent := false
	for {
		for {
			m, ok := n.TryRecvTag(tagReady)
			if !ok {
				break
			}
			if m.Data.(int) == st.phase {
				childReady++
			}
		}
		if tk, ok := st.rte.PopFront(); ok {
			st.execute(tk)
			continue
		}
		if childReady == len(children) && !readySent {
			readySent = true
			if n.ID() == 0 {
				// Global ALL condition reached at the root.
				for _, c := range children {
					n.SendTag(c, tagInit, initMsg{phase: st.phase}, 16)
				}
				return
			}
			n.SendTag((n.ID()-1)/2, tagReady, st.phase, 8)
		}
		// Idle until a ready or the init arrives. Other traffic (a fast
		// neighbour's early system-phase messages) stays queued.
		m := n.RecvTags(tagReady, tagInit)
		switch m.Tag {
		case tagReady:
			if m.Data.(int) == st.phase {
				childReady++
			}
		case tagInit:
			if m.Data.(initMsg).phase == st.phase {
				for _, c := range children {
					n.SendTag(c, tagInit, initMsg{phase: st.phase}, 16)
				}
				return
			}
		default:
			invariant.Violated("ripsrt: unexpected tag %d in ALL user phase", m.Tag)
		}
	}
}

// userPhasePeriodic implements the naive detector: a global reduction
// every Period tests the transfer condition. Every node participates
// in every check instance in order (the reduction is a rendezvous, so
// instances pair up across nodes); the check clock restarts at each
// user phase so that time spent in system phases does not leave a
// backlog of permanently-due checks — that backlog would let a true
// condition preempt every task execution and livelock the endgame.
func (st *nodeState) userPhasePeriodic() {
	n := st.n
	st.nextCheck = n.Now() + st.cfg.Period
	for {
		for n.Now() >= st.nextCheck {
			if st.runCheck() {
				return
			}
		}
		if tk, ok := st.rte.PopFront(); ok {
			st.execute(tk)
			continue
		}
		n.Sleep(st.nextCheck - n.Now())
	}
}

// runCheck performs one periodic reduction; true means transfer.
func (st *nodeState) runCheck() bool {
	st.nextCheck += st.cfg.Period
	var ready int64
	if st.rte.Empty() {
		ready = 1
	}
	st.overhead(st.costs.PerElem * 8)
	if st.cfg.Global == All {
		return st.comm.AllReduce(ready, collective.Sum) == int64(st.n.N())
	}
	return st.comm.AllReduce(ready, collective.Max) == 1
}
