package ripsrt

import (
	"rips/internal/invariant"
	"rips/internal/sim"
	"rips/internal/topo"
)

// treeSched is the message-passing Tree Walking Algorithm (the
// paper's optimal parallel scheduler for tree machines, ref [25]):
// an upward sweep accumulates subtree totals, the root broadcasts the
// average, and tasks then move along tree links — whose flows are
// forced to subtreeTotal - subtreeQuota, so the schedule is optimal
// for the quota assignment.
type treeSched struct {
	tree     *topo.Tree
	id       int
	parent   int
	children []int
}

func newTreeSched(t *topo.Tree, id int) *treeSched {
	return &treeSched{tree: t, id: id, parent: t.Parent(id), children: t.Children(id)}
}

// subRange iterates the heap-order id ranges of v's subtree level by
// level: level l of subtree v occupies [(v+1)*2^l - 1, (v+1)*2^l - 1 + 2^l).
func (ts *treeSched) subRanges(v int, visit func(lo, hi int)) {
	n := ts.tree.Size()
	for width := 1; ; width *= 2 {
		lo := (v+1)*width - 1
		if lo >= n {
			return
		}
		hi := lo + width
		if hi > n {
			hi = n
		}
		visit(lo, hi)
	}
}

// subSize returns the number of nodes in v's subtree.
func (ts *treeSched) subSize(v int) int {
	size := 0
	ts.subRanges(v, func(lo, hi int) { size += hi - lo })
	return size
}

// subQuota returns the total quota of v's subtree: avg per node plus
// one extra for every subtree id below rem.
func (ts *treeSched) subQuota(v int, bc bcastMsg) int {
	q := bc.avg * ts.subSize(v)
	ts.subRanges(v, func(lo, hi int) {
		if hi > bc.rem {
			hi = bc.rem
		}
		if lo < hi {
			q += hi - lo
		}
	})
	return q
}

// phase runs one Tree Walking Algorithm round.
func (ts *treeSched) phase(st *nodeState) int {
	n := st.n
	st.overhead(st.costs.PerPhase)
	st.rts.PushAll(st.rte.Drain())
	w := st.rts.Len()
	st.ownTaken = 0

	// Upward sweep: subtree totals.
	childTotal := make([]int, len(ts.children))
	subTotal := w
	for i, c := range ts.children {
		childTotal[i] = n.RecvFrom(c, tagColT).Data.(int)
		subTotal += childTotal[i]
	}
	if ts.parent >= 0 {
		n.SendTag(ts.parent, tagColT, subTotal, 8)
	}

	// Root derives the quotas and broadcasts them down the tree.
	var bc bcastMsg
	if ts.parent < 0 {
		bc = bcastMsg{avg: subTotal / n.N(), rem: subTotal % n.N(), total: subTotal}
	} else {
		bc = n.RecvFrom(ts.parent, tagSpread).Data.(bcastMsg)
	}
	for _, c := range ts.children {
		n.SendTag(c, tagSpread, bc, 24)
	}
	st.overhead(st.costs.PerElem * sim.Time(len(ts.children)+1))

	st.phase++
	if bc.total == 0 {
		return 0
	}

	// Link flows are forced: each subtree exports its surplus.
	myFlow := 0
	if ts.parent >= 0 {
		myFlow = subTotal - ts.subQuota(ts.id, bc)
	}
	// Receive from overloaded children first (bottom-up order)...
	for i, c := range ts.children {
		if childTotal[i]-ts.subQuota(c, bc) > 0 {
			st.acceptTasks(n.RecvFrom(c, tagUp).Data.(horzMsg).tasks)
		}
	}
	// ...then export our own surplus...
	if myFlow > 0 {
		bundle := st.takeTasks(myFlow)
		n.SendTag(ts.parent, tagUp, horzMsg{tasks: bundle}, sizeOfTasks(bundle))
	}
	// ...then the downward sweep: receive our deficit, feed deficits
	// below (top-down order).
	if myFlow < 0 {
		st.acceptTasks(n.RecvFrom(ts.parent, tagDown).Data.(horzMsg).tasks)
	}
	for i, c := range ts.children {
		if f := childTotal[i] - ts.subQuota(c, bc); f < 0 {
			bundle := st.takeTasks(-f)
			n.SendTag(c, tagDown, horzMsg{tasks: bundle}, sizeOfTasks(bundle))
		}
	}

	// Theorem 1 (exact quota) and Theorem 2 (no resident task exported
	// beyond the surplus) hold per node after the walk.
	quota := bc.avg
	if ts.id < bc.rem {
		quota++
	}
	got := st.rts.Len() + len(st.inbox)
	invariant.BalancedWithinOne(got, bc.total, n.N(), ts.id, "ripsrt: tree system phase")
	invariant.Locality(st.ownTaken, w-quota, "ripsrt: tree system phase")
	st.rte.PushAll(st.rts.Drain())
	st.rte.PushAll(st.inbox)
	st.inbox = nil
	return bc.total
}
