// Package ripsrt is the RIPS runtime itself: Runtime Incremental
// Parallel Scheduling on the simulated mesh machine. Execution
// alternates between system phases — where every node cooperates in a
// message-passing run of the Mesh Walking Algorithm to rebalance all
// schedulable tasks — and user phases, where nodes execute tasks and
// generate new ones (Figure 1 of the paper).
//
// The transfer from user to system phase is governed by the paper's
// two policy axes: the local policy (Eager: two queues, every task is
// scheduled before execution; Lazy: a single queue, tasks may run
// where they were generated) and the global policy (ALL: transfer when
// every node drained, via a ready-signal reduction tree; ANY: the
// first drained node broadcasts an init signal, with a phase index to
// cancel redundant initiators). A periodic-reduction detector — the
// naive implementation the paper describes first — is available as an
// alternative to the signal-driven detectors.
package ripsrt

import (
	"fmt"

	"rips/internal/app"
	"rips/internal/metrics"
	"rips/internal/sim"
	"rips/internal/topo"
)

// LocalPolicy selects the paper's local transfer sub-policy.
type LocalPolicy int

const (
	// Lazy keeps a single RTE queue; newly generated tasks are
	// executable immediately and may never be scheduled at all.
	Lazy LocalPolicy = iota
	// Eager keeps RTS and RTE queues; every task must pass through a
	// system phase before it can execute.
	Eager
)

func (p LocalPolicy) String() string {
	if p == Eager {
		return "eager"
	}
	return "lazy"
}

// GlobalPolicy selects the paper's global transfer sub-policy.
type GlobalPolicy int

const (
	// Any transfers as soon as one node meets its local condition.
	Any GlobalPolicy = iota
	// All transfers only when every node meets its local condition.
	All
)

func (p GlobalPolicy) String() string {
	if p == All {
		return "all"
	}
	return "any"
}

// Detector selects how the global condition is tested.
type Detector int

const (
	// Signal is the event-driven implementation: ready-signal trees
	// for ALL, init broadcasts with phase indices for ANY.
	Signal Detector = iota
	// Periodic is the naive implementation: a global reduction every
	// Period of virtual time.
	Periodic
)

func (d Detector) String() string {
	if d == Periodic {
		return "periodic"
	}
	return "signal"
}

// Costs models the CPU cost of runtime bookkeeping, charged as system
// overhead on the node clocks.
type Costs struct {
	// PerPhase is the fixed per-node cost of one phase transfer.
	PerPhase sim.Time
	// PerElem is the cost of processing one vector element in the
	// system phase's scheduling arithmetic.
	PerElem sim.Time
	// PerTask is the cost of packing or unpacking one migrated task.
	PerTask sim.Time
	// PerEnqueue is the cost of enqueuing one newly generated task.
	PerEnqueue sim.Time
}

// DefaultCosts returns constants calibrated to mid-90s MPP software
// overheads (the paper reports ~1 ms per migration step and ~0.5 s
// total overhead for a 10 s run).
func DefaultCosts() Costs {
	return Costs{
		PerPhase:   50 * sim.Microsecond,
		PerElem:    200 * sim.Nanosecond,
		PerTask:    2 * sim.Microsecond,
		PerEnqueue: 1 * sim.Microsecond,
	}
}

// Config describes a RIPS run.
type Config struct {
	// Mesh is the machine shape (the paper's Paragon mesh).
	Mesh *topo.Mesh
	// Topo, when set, selects a non-mesh machine: RIPS also runs on
	// binary trees (Tree Walking Algorithm system phases) and
	// hypercubes (incremental Dimension Exchange) — the topologies the
	// paper's companion work [32] covers. Mutually exclusive with Mesh.
	Topo topo.Topology
	// App is the workload.
	App app.App
	// Local and Global select the transfer policy (ANY-Lazy, the
	// paper's best combination, is the zero value).
	Local  LocalPolicy
	Global GlobalPolicy
	// Detector selects signal-driven (default) or periodic detection;
	// Period is the reduction interval for the periodic detector.
	Detector Detector
	Period   sim.Time
	// ExactCube switches hypercube machines from the incremental
	// Dimension Exchange system phase to the exact Cube Walking
	// Algorithm (balance within one task, like MWA on the mesh).
	ExactCube bool
	// Eureka models hardware or-barrier support for the ANY policy
	// (the Cray T3D eureka mode the paper cites): the initiator's init
	// signal reaches every node after EurekaLatency at unit cost,
	// instead of relaying through a software broadcast tree.
	Eureka bool
	// EurekaLatency is the hardware signal latency (default 10us).
	EurekaLatency sim.Time
	// InitBackoff throttles the ANY policy: a drained node waits this
	// long (plus a small id-proportional jitter, so one node initiates
	// rather than all of them) before broadcasting init. Without it,
	// sparse phases — a round's first tasks still fanning out — trigger
	// a storm of nearly-empty system phases. Negative disables; zero
	// means the default of 1ms (DefaultInitBackoff).
	InitBackoff sim.Time
	// Latency prices messages; zero value means sim.DefaultLatency().
	Latency *sim.LatencyModel
	// Costs models runtime CPU overheads; zero value means defaults.
	Costs *Costs
	// Seed feeds the (rarely needed) node RNGs.
	Seed int64
	// MaxEvents optionally caps simulator events (safety net).
	MaxEvents uint64
	// Cancel, when non-nil, aborts the run once the channel is closed.
	// The simulator polls it between events; a canceled run returns a
	// partial Result with Canceled set alongside sim.ErrCanceled, and
	// run-level conservation is not checked (tasks were abandoned
	// mid-flight by design, not lost by a scheduler bug).
	Cancel <-chan struct{}
	// OnPhase, when non-nil, is called by node 0's simulated program
	// after every system phase with a snapshot of the phase's outcome.
	// It runs on the simulator's single driver thread while every other
	// node is parked, so it must not block; hand the value off and
	// return (see metrics.PhaseInfo).
	OnPhase func(metrics.PhaseInfo)
}

func (c *Config) validate() error {
	if c.Mesh == nil && c.Topo == nil {
		return fmt.Errorf("ripsrt: one of Config.Mesh or Config.Topo is required")
	}
	if c.Mesh != nil && c.Topo != nil {
		return fmt.Errorf("ripsrt: Config.Mesh and Config.Topo are mutually exclusive")
	}
	if c.Topo != nil {
		switch c.Topo.(type) {
		case *topo.Mesh, *topo.Tree, *topo.Hypercube:
		default:
			return fmt.Errorf("ripsrt: no system-phase scheduler for %s", c.Topo.Name())
		}
	}
	if c.App == nil {
		return fmt.Errorf("ripsrt: Config.App is nil")
	}
	if c.Detector == Periodic && c.Period <= 0 {
		return fmt.Errorf("ripsrt: periodic detector requires a positive Period")
	}
	return nil
}

// machineTopo resolves the configured machine.
func (c *Config) machineTopo() topo.Topology {
	if c.Topo != nil {
		return c.Topo
	}
	return c.Mesh
}

func (c *Config) latency() sim.LatencyModel {
	if c.Latency != nil {
		return *c.Latency
	}
	return sim.DefaultLatency()
}

// DefaultInitBackoff is the ANY-policy initiation delay used when
// Config.InitBackoff is zero.
const DefaultInitBackoff = sim.Millisecond

// DefaultEurekaLatency is the hardware or-barrier signal latency used
// when Config.EurekaLatency is zero.
const DefaultEurekaLatency = 10 * sim.Microsecond

func (c *Config) eurekaLatency() sim.Time {
	if c.EurekaLatency > 0 {
		return c.EurekaLatency
	}
	return DefaultEurekaLatency
}

func (c *Config) initBackoff() sim.Time {
	switch {
	case c.InitBackoff < 0:
		return 0
	case c.InitBackoff == 0:
		return DefaultInitBackoff
	default:
		return c.InitBackoff
	}
}

func (c *Config) costs() Costs {
	if c.Costs != nil {
		return *c.Costs
	}
	return DefaultCosts()
}

// PolicyName returns e.g. "any-lazy" — the paper's policy naming.
func (c *Config) PolicyName() string {
	return c.Global.String() + "-" + c.Local.String()
}
