package ripsrt

import (
	"rips/internal/invariant"
	"rips/internal/topo"
)

// cubeWalkSched is the message-passing Cube Walking Algorithm
// (internal/sched/cubewalk): exact within-one balancing on a hypercube
// in O(d^2) communication steps — the upgrade over cubeSched's
// incremental Dimension Exchange, selected with Config.ExactCube.
//
// Per dimension k (highest first): the two halves of each 2^(k+1)
// subcube learn the half surplus via a butterfly sum over the group's
// links, the sending half runs a Hillis-Steele prefix scan of its
// surpluses over its own k-subcube, and each pair then ships the
// MWA-recurrence share across its dimension-k link.
type cubeWalkSched struct {
	cube *topo.Hypercube
	id   int
}

func newCubeWalkSched(h *topo.Hypercube, id int) *cubeWalkSched {
	return &cubeWalkSched{cube: h, id: id}
}

func (cs *cubeWalkSched) phase(st *nodeState) int {
	n := st.n
	d := cs.cube.Dim()
	st.overhead(st.costs.PerPhase)
	st.rts.PushAll(st.rte.Drain())
	w := st.rts.Len()
	st.ownTaken = 0

	// Machine-wide total via a full butterfly; every node learns T and
	// derives the quotas.
	total := w
	for k := 0; k < d; k++ {
		p := cs.id ^ (1 << k)
		n.SendTag(p, tagColT, total, 8)
		total += n.RecvFrom(p, tagColT).Data.(int)
	}
	st.phase++
	if total == 0 {
		return 0
	}
	avg, rem := total/n.N(), total%n.N()
	quota := func(id int) int {
		if id < rem {
			return avg + 1
		}
		return avg
	}

	cur := st.rts.Len() + len(st.inbox)
	for k := d - 1; k >= 0; k-- {
		bit := 1 << k
		// My half's surplus sum: butterfly over the k low dimensions
		// (the links internal to my half of the group).
		delta := cur - quota(cs.id)
		halfSum := delta
		for j := 0; j < k; j++ {
			p := cs.id ^ (1 << j)
			n.SendTag(p, tagScanW, halfSum, 8)
			halfSum += n.RecvFrom(p, tagScanW).Data.(int)
		}
		// The partner's half has the opposite surplus (the group as a
		// whole is already on quota), so no cross-half exchange of
		// sums is needed; f > 0 means my half sends.
		f := halfSum
		sending := f > 0
		if f == 0 {
			st.overhead(st.costs.PerElem * 4)
			continue
		}
		if sending {
			// The MWA delta/eta/gamma export recurrence has the closed
			// form cum_p = max(0, min(f, maxPrefix_p)), where
			// maxPrefix_p is the running maximum of the inclusive
			// prefix sums of delta over the pairs in rank order. The
			// (sum, max-prefix) pair is an associative aggregate, so a
			// Hillis-Steele doubling scan over the half's contiguous
			// ids yields both the inclusive and exclusive values in k
			// rounds.
			rank := cs.id & (bit - 1)
			own := scanVal{s: delta, m: delta}
			incl := own
			excl := scanIdentity
			for dist := 1; dist < bit; dist <<= 1 {
				if rank+dist < bit {
					n.SendTag(cs.id+dist, tagSpread, incl, 16)
				}
				if rank-dist >= 0 {
					got := n.RecvFrom(cs.id-dist, tagSpread).Data.(scanVal)
					// The received segment lies wholly left of what we
					// have accumulated so far.
					excl = scanCombine(got, excl)
					incl = scanCombine(got, incl)
				}
			}
			x := min(f, max(0, incl.m)) - min(f, max(0, excl.m))
			// A receiver cannot predict whether this is zero, so the
			// sender always ships a (possibly empty) bundle.
			bundle := st.takeTasks(x)
			n.SendTag(cs.id^bit, tagDown, horzMsg{tasks: bundle}, sizeOfTasks(bundle))
			cur -= x
		} else {
			hm := n.RecvFrom(cs.id^bit, tagDown).Data.(horzMsg)
			st.acceptTasks(hm.tasks)
			cur += len(hm.tasks)
		}
		st.overhead(st.costs.PerElem * 8)
	}

	// Theorem 1 (exact quota), bookkeeping conservation, and Theorem 2
	// (resident exports bounded by surplus) after the walk.
	got := st.rts.Len() + len(st.inbox)
	invariant.Conserved(got, cur, "ripsrt: cubewalk system phase")
	invariant.BalancedWithinOne(got, total, n.N(), cs.id, "ripsrt: cubewalk system phase")
	invariant.Locality(st.ownTaken, w-quota(cs.id), "ripsrt: cubewalk system phase")
	st.rte.PushAll(st.rts.Drain())
	st.rte.PushAll(st.inbox)
	st.inbox = nil
	return total
}

// scanVal is the prefix-scan aggregate of a contiguous pair segment:
// s is the segment's delta sum, m the maximum inclusive prefix sum
// within the segment.
type scanVal struct {
	s, m int
}

// scanIdentity is the neutral element (empty segment).
var scanIdentity = scanVal{s: 0, m: -1 << 40}

// scanCombine merges a left segment with the segment to its right.
func scanCombine(l, r scanVal) scanVal {
	return scanVal{s: l.s + r.s, m: max(l.m, l.s+r.m)}
}
