package ripsrt

import (
	"math/rand"
	"testing"

	"rips/internal/app"
	"rips/internal/apps/nqueens"
	"rips/internal/collective"
	"rips/internal/sched/cubewalk"
	"rips/internal/sched/dem"
	"rips/internal/sched/treewalk"
	"rips/internal/sim"
	"rips/internal/task"
	"rips/internal/topo"
)

// phaseOn runs a single white-box system phase with the given loads
// and returns the per-node final counts plus the migrated counter.
func phaseOn(t *testing.T, machine topo.Topology, w []int) ([]int, int64) {
	t.Helper()
	cfg := Config{Topo: machine, App: dummyApp{}}
	final := make([]int, machine.Size())
	sr, err := sim.Run(sim.Config{Topo: machine, Latency: sim.DefaultLatency(), Seed: 3}, func(n *sim.Node) {
		st := &nodeState{
			n:     n,
			cfg:   &cfg,
			costs: cfg.costs(),
			sched: newPhaseScheduler(machine, n.ID(), false),
			comm:  &collective.Comm{Node: n, TagBase: tagColl},
		}
		for k := 0; k < w[n.ID()]; k++ {
			st.rts.PushBack(task.Task{ID: st.newID(), Origin: n.ID(), Size: 16})
		}
		st.systemPhase()
		final[n.ID()] = st.rte.Len()
	})
	if err != nil {
		t.Fatalf("%s w=%v: %v", machine.Name(), w, err)
	}
	return final, sr.Counters[CounterMigrated]
}

// TestTreePhaseMatchesPureTWA: a tree system phase must land exactly
// on the pure Tree Walking Algorithm's quotas and transfer count.
func TestTreePhaseMatchesPureTWA(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for _, size := range []int{1, 2, 3, 7, 15, 20, 31} {
		tree := topo.NewTree(size)
		for trial := 0; trial < 10; trial++ {
			w := make([]int, size)
			for i := range w {
				w[i] = rng.Intn(15)
			}
			pure, err := treewalk.Plan(tree, w)
			if err != nil {
				t.Fatal(err)
			}
			final, migrated := phaseOn(t, tree, w)
			for id := range final {
				if final[id] != pure.Quota[id] {
					t.Fatalf("tree %d w=%v: node %d got %d, pure TWA says %d",
						size, w, id, final[id], pure.Quota[id])
				}
			}
			if migrated != int64(pure.Plan.Cost()) {
				t.Fatalf("tree %d w=%v: migrated %d, pure TWA cost %d", size, w, migrated, pure.Plan.Cost())
			}
		}
	}
}

// TestCubePhaseMatchesPureDEM: a hypercube system phase performs
// exactly one Dimension Exchange sweep.
func TestCubePhaseMatchesPureDEM(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for _, dim := range []int{0, 1, 2, 3, 4, 5} {
		cube := topo.NewHypercube(dim)
		for trial := 0; trial < 10; trial++ {
			w := make([]int, cube.Size())
			for i := range w {
				w[i] = rng.Intn(15)
			}
			pure, err := dem.Plan(cube, w)
			if err != nil {
				t.Fatal(err)
			}
			final, migrated := phaseOn(t, cube, w)
			for id := range final {
				if final[id] != pure.Final[id] {
					t.Fatalf("cube %d w=%v: node %d got %d, pure DEM says %d",
						dim, w, id, final[id], pure.Final[id])
				}
			}
			if migrated != int64(pure.Plan.Cost()) {
				t.Fatalf("cube %d w=%v: migrated %d, pure DEM cost %d", dim, w, migrated, pure.Plan.Cost())
			}
		}
	}
}

// TestRIPSOnAllTopologies: whole runs complete with work conservation
// on tree and hypercube machines, under several policies.
func TestRIPSOnAllTopologies(t *testing.T) {
	a := nqueens.New(10, 3)
	profile := app.Measure(a)
	machines := []topo.Topology{
		topo.NewTree(15), topo.NewTree(16),
		topo.NewHypercube(3), topo.NewHypercube(4),
	}
	for _, machine := range machines {
		for _, global := range []GlobalPolicy{Any, All} {
			cfg := Config{Topo: machine, App: a, Global: global, Seed: 4}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%v: %v", machine.Name(), global, err)
			}
			if res.Executed != int64(profile.Tasks) {
				t.Errorf("%s/%v: executed %d, want %d", machine.Name(), global, res.Executed, profile.Tasks)
			}
			var busy sim.Time
			for _, st := range res.Sim.Nodes {
				busy += st.Busy
			}
			if busy != profile.Work {
				t.Errorf("%s/%v: busy %v, want %v", machine.Name(), global, busy, profile.Work)
			}
		}
	}
}

// TestMeshViaTopoField: passing a mesh through Topo behaves like Mesh.
func TestMeshViaTopoField(t *testing.T) {
	a := nqueens.New(9, 3)
	viaMesh, err := Run(Config{Mesh: topo.NewMesh(2, 4), App: a, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	viaTopo, err := Run(Config{Topo: topo.NewMesh(2, 4), App: a, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if viaMesh.Time != viaTopo.Time || viaMesh.Nonlocal != viaTopo.Nonlocal {
		t.Errorf("Mesh and Topo configs diverge: %+v vs %+v", viaMesh, viaTopo)
	}
}

func TestTopoValidation(t *testing.T) {
	if _, err := Run(Config{Topo: topo.NewRing(4), App: dummyApp{}}); err == nil {
		t.Error("unsupported topology accepted")
	}
	if _, err := Run(Config{Mesh: topo.NewMesh(2, 2), Topo: topo.NewTree(4), App: dummyApp{}}); err == nil {
		t.Error("both Mesh and Topo accepted")
	}
}

// TestCubeBalanceWithinDimension: after one cube phase, the spread is
// bounded by the dimension (DEM's guarantee), not by one.
func TestCubeBalanceWithinDimension(t *testing.T) {
	cube := topo.NewHypercube(4)
	w := make([]int, 16)
	w[0] = 160
	final, _ := phaseOn(t, cube, w)
	lo, hi := final[0], final[0]
	for _, f := range final {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi-lo > 4 {
		t.Errorf("spread %d exceeds cube dimension", hi-lo)
	}
}

// TestEurekaPolicy: the hardware or-barrier variant of ANY completes
// with identical task accounting and fewer software messages.
func TestEurekaPolicy(t *testing.T) {
	a := nqueens.New(10, 3)
	profile := app.Measure(a)
	soft, err := Run(Config{Mesh: topo.NewMesh(4, 4), App: a, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hard, err := Run(Config{Mesh: topo.NewMesh(4, 4), App: a, Seed: 2, Eureka: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []Result{soft, hard} {
		if res.Executed != int64(profile.Tasks) {
			t.Errorf("executed %d, want %d", res.Executed, profile.Tasks)
		}
	}
	if hard.Time <= 0 {
		t.Error("eureka run has no time")
	}
}

// TestCubeWalkPhaseMatchesPureCWA: the exact hypercube system phase
// must land exactly on the pure Cube Walking Algorithm's quotas.
func TestCubeWalkPhaseMatchesPureCWA(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, dim := range []int{0, 1, 2, 3, 4, 5} {
		cube := topo.NewHypercube(dim)
		for trial := 0; trial < 10; trial++ {
			w := make([]int, cube.Size())
			for i := range w {
				w[i] = rng.Intn(15)
			}
			pure, err := cubewalk.Plan(cube, w)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Topo: cube, App: dummyApp{}, ExactCube: true}
			final := make([]int, cube.Size())
			_, err = sim.Run(sim.Config{Topo: cube, Latency: sim.DefaultLatency(), Seed: 3}, func(n *sim.Node) {
				st := &nodeState{
					n:     n,
					cfg:   &cfg,
					costs: cfg.costs(),
					sched: newPhaseScheduler(cube, n.ID(), true),
					comm:  &collective.Comm{Node: n, TagBase: tagColl},
				}
				for k := 0; k < w[n.ID()]; k++ {
					st.rts.PushBack(task.Task{ID: st.newID(), Origin: n.ID(), Size: 16})
				}
				st.systemPhase()
				final[n.ID()] = st.rte.Len()
			})
			if err != nil {
				t.Fatalf("cube %d w=%v: %v", dim, w, err)
			}
			for id := range final {
				if final[id] != pure.Quota[id] {
					t.Fatalf("cube %d w=%v: node %d got %d, pure CWA says %d",
						dim, w, id, final[id], pure.Quota[id])
				}
			}
		}
	}
}

// TestExactCubeFullRun: whole runs complete under the exact cube phase.
func TestExactCubeFullRun(t *testing.T) {
	a := nqueens.New(10, 3)
	profile := app.Measure(a)
	res, err := Run(Config{Topo: topo.NewHypercube(4), App: a, ExactCube: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != int64(profile.Tasks) {
		t.Errorf("executed %d, want %d", res.Executed, profile.Tasks)
	}
}
