package ripsrt

import (
	"errors"
	"testing"

	"rips/internal/apps/nqueens"
	"rips/internal/metrics"
	"rips/internal/sim"
	"rips/internal/topo"
)

// TestCancelReturnsPartialResult aborts a simulated run before it
// starts and checks the partial-result contract: sim.ErrCanceled,
// Canceled set, and no conservation error despite Executed falling
// short of Generated.
func TestCancelReturnsPartialResult(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	res, err := Run(Config{
		Mesh:   topo.NewMesh(2, 2),
		App:    nqueens.New(10, 3),
		Cancel: cancel,
	})
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("err = %v, want sim.ErrCanceled", err)
	}
	if !res.Canceled {
		t.Error("Result.Canceled = false on a canceled run")
	}
	if res.Executed > res.Generated {
		t.Errorf("executed %d > generated %d", res.Executed, res.Generated)
	}
}

// TestCancelUnusedCompletes checks an armed-but-unfired Cancel channel
// changes nothing about a completed run.
func TestCancelUnusedCompletes(t *testing.T) {
	cancel := make(chan struct{})
	defer close(cancel)
	res, err := Run(Config{
		Mesh:   topo.NewMesh(2, 2),
		App:    nqueens.New(8, 3),
		Cancel: cancel,
	})
	if err != nil {
		t.Fatalf("Run with armed cancel: %v", err)
	}
	if res.Canceled {
		t.Error("Result.Canceled = true on a completed run")
	}
	if res.AppResult != 92 {
		t.Errorf("AppResult = %d, want 92 solutions", res.AppResult)
	}
}

// TestOnPhaseStreamsEveryPhase checks the OnPhase hook fires once per
// system phase, in order, with virtual time monotonically advancing and
// the task totals matching the recorded trace.
func TestOnPhaseStreamsEveryPhase(t *testing.T) {
	var seen []metrics.PhaseInfo
	res, err := Run(Config{
		Mesh: topo.NewMesh(2, 2),
		App:  nqueens.New(8, 3),
		OnPhase: func(pi metrics.PhaseInfo) {
			seen = append(seen, pi)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(seen)) != res.Phases {
		t.Fatalf("OnPhase fired %d times for %d phases", len(seen), res.Phases)
	}
	var last sim.Time
	for i, pi := range seen {
		if pi.Phase != int64(i+1) {
			t.Errorf("phase %d reported index %d", i+1, pi.Phase)
		}
		if pi.Tasks != res.PhaseTotals[i] {
			t.Errorf("phase %d reported %d tasks, trace says %d", i+1, pi.Tasks, res.PhaseTotals[i])
		}
		if pi.VirtualTime < last {
			t.Errorf("phase %d virtual time %v went backwards from %v", i+1, pi.VirtualTime, last)
		}
		last = pi.VirtualTime
		if pi.Elapsed != 0 {
			t.Errorf("phase %d reported wall Elapsed %v on the simulate backend", i+1, pi.Elapsed)
		}
	}
}
