package ripsrt

import "rips/internal/task"

// Protocol tags. Collective operations (broadcast of wavg/R/T, the
// periodic detector's reductions) use tagColl upward.
const (
	tagInit   = iota // phase-transfer init broadcast (data: int phase)
	tagReady         // ALL-policy ready signal (data: int phase)
	tagScanW         // MWA step 1: row prefix of load values
	tagColT          // MWA step 2: column scan of prefix sums t
	tagSpread        // MWA step 2: row spread of (s, t, tPrev)
	tagDown          // MWA step 4: downward tasks + d prefix vector
	tagUp            // MWA step 4: upward tasks + u prefix vector
	tagRight         // MWA step 5: rightward task bundle
	tagLeft          // MWA step 5: leftward task bundle
	tagColl          // base tag for collective operations
)

// initMsg announces a phase transfer: the ANY policy relays it down a
// binomial broadcast tree rooted at the initiator; the phase index
// cancels redundant initiators' copies.
type initMsg struct {
	phase int
	root  int
}

// scanWMsg carries the step-1 prefix of this row's task counts:
// entry k is node (i,k)'s schedulable-task count, k = 0..j.
type scanWMsg struct {
	w []int
}

// spreadMsg carries a row's step-2 aggregates from the rightmost
// column leftward.
type spreadMsg struct {
	s, t, tPrev int
}

// bcastMsg is the step-2 broadcast from node (n1-1, n2-1).
type bcastMsg struct {
	avg, rem, total int
}

// vertMsg is a step-4 vertical transfer: the migrating tasks plus the
// sender's d (or u) prefix vector for columns 0..j, which the receiver
// needs to update its stored row prefix.
type vertMsg struct {
	tasks []task.Task
	vec   []int
}

// horzMsg is a step-5 horizontal transfer.
type horzMsg struct {
	tasks []task.Task
}

// sizeOfTasks sums the serialized payload bytes of a task bundle
// (tasks are "packed together for transmission" as in the paper).
func sizeOfTasks(ts []task.Task) int {
	s := 16 // bundle header
	for _, t := range ts {
		s += t.Size + 16
	}
	return s
}
