package ripsrt

import (
	"math/rand"
	"testing"

	"rips/internal/app"
	"rips/internal/apps/nqueens"
	"rips/internal/collective"
	"rips/internal/sched"
	"rips/internal/sched/mwa"
	"rips/internal/sim"
	"rips/internal/task"
	"rips/internal/topo"
)

// dummyApp exists only to satisfy Config in white-box phase tests.
type dummyApp struct{}

func (dummyApp) Name() string                          { return "dummy" }
func (dummyApp) Rounds() int                           { return 1 }
func (dummyApp) Roots(int) []app.Spawn                 { return nil }
func (dummyApp) Execute(any, func(app.Spawn)) sim.Time { return 0 }

// TestSystemPhaseMatchesPureMWA is the central fidelity check: one
// message-passing system phase must deliver exactly the per-node
// quotas and total per-link transfer count of the pure Figure 3
// algorithm in internal/sched/mwa.
func TestSystemPhaseMatchesPureMWA(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, mesh := range []*topo.Mesh{
		topo.NewMesh(1, 1), topo.NewMesh(1, 6), topo.NewMesh(6, 1),
		topo.NewMesh(2, 2), topo.NewMesh(4, 4), topo.NewMesh(8, 4), topo.NewMesh(3, 5),
	} {
		for trial := 0; trial < 8; trial++ {
			w := make([]int, mesh.Size())
			for i := range w {
				w[i] = rng.Intn(25)
			}
			pure, err := mwa.Plan(mesh, w)
			if err != nil {
				t.Fatal(err)
			}

			cfg := Config{Mesh: mesh, App: dummyApp{}}
			final := make([]int, mesh.Size())
			totals := make([]int, mesh.Size())
			sr, err := sim.Run(sim.Config{Topo: mesh, Latency: sim.DefaultLatency(), Seed: 3}, func(n *sim.Node) {
				st := &nodeState{
					n:     n,
					cfg:   &cfg,
					costs: cfg.costs(),
					sched: newMeshSched(mesh, n.ID()),
					comm:  &collective.Comm{Node: n, TagBase: tagColl},
				}
				for k := 0; k < w[n.ID()]; k++ {
					st.rts.PushBack(task.Task{ID: st.newID(), Origin: n.ID(), Size: 16})
				}
				totals[n.ID()] = st.systemPhase()
				final[n.ID()] = st.rte.Len()
			})
			if err != nil {
				t.Fatalf("%s w=%v: %v", mesh.Name(), w, err)
			}
			for id := range final {
				if final[id] != pure.Quota[id] {
					t.Fatalf("%s w=%v: node %d got %d tasks, pure MWA says %d",
						mesh.Name(), w, id, final[id], pure.Quota[id])
				}
				if totals[id] != pure.Total {
					t.Fatalf("%s: node %d reported total %d, want %d", mesh.Name(), id, totals[id], pure.Total)
				}
			}
			if got := sr.Counters[CounterMigrated]; got != int64(pure.Plan.Cost()) {
				t.Fatalf("%s w=%v: migrated %d task-links, pure MWA cost %d",
					mesh.Name(), w, got, pure.Plan.Cost())
			}
		}
	}
}

// TestSystemPhaseLocality: replaying a phase with provenance, resident
// tasks stay put whenever Lemma 1 allows (divisible totals).
func TestSystemPhaseLocality(t *testing.T) {
	mesh := topo.NewMesh(4, 4)
	w := []int{32, 0, 0, 0, 0, 16, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	cfg := Config{Mesh: mesh, App: dummyApp{}}
	sr, err := sim.Run(sim.Config{Topo: mesh, Seed: 1}, func(n *sim.Node) {
		st := &nodeState{n: n, cfg: &cfg, costs: cfg.costs(),
			sched: newMeshSched(mesh, n.ID()),
			comm:  &collective.Comm{Node: n, TagBase: tagColl}}
		for k := 0; k < w[n.ID()]; k++ {
			st.rts.PushBack(task.Task{ID: st.newID(), Origin: n.ID(), Size: 16})
		}
		st.systemPhase()
		// Count tasks still at their origin.
		local := 0
		for !st.rte.Empty() {
			tk, _ := st.rte.PopFront()
			if tk.Origin == n.ID() {
				local++
			}
		}
		n.Count("test.local", int64(local))
	})
	if err != nil {
		t.Fatal(err)
	}
	// avg = 3: origins keep min(w, 3) = 3 and 3; nonlocal = 48 - 6 = 42;
	// Lemma 1 minimum m = sum of deficits = 14 nodes * 3 = 42. Local
	// total = 48 - 42 = 6.
	if got := sr.Counters["test.local"]; got != 6 {
		t.Errorf("local tasks = %d, want 6 (maximum locality)", got)
	}
	if m := sched.MinNonlocal(w); m != 42 {
		t.Fatalf("test arithmetic wrong: m=%d", m)
	}
}

func queensCfg(mesh *topo.Mesh, local LocalPolicy, global GlobalPolicy) Config {
	return Config{
		Mesh:   mesh,
		App:    nqueens.New(10, 3),
		Local:  local,
		Global: global,
	}
}

// TestAllPolicyCombinationsComplete: the four paper policies and both
// periodic detectors all run 10-queens to completion with every task
// executed exactly once and full work conservation.
func TestAllPolicyCombinationsComplete(t *testing.T) {
	mesh := topo.NewMesh(4, 4)
	profile := app.Measure(nqueens.New(10, 3))
	cases := []Config{
		queensCfg(mesh, Lazy, Any),
		queensCfg(mesh, Eager, Any),
		queensCfg(mesh, Lazy, All),
		queensCfg(mesh, Eager, All),
	}
	per := queensCfg(mesh, Lazy, Any)
	per.Detector = Periodic
	per.Period = 2 * sim.Millisecond
	cases = append(cases, per)
	perAll := queensCfg(mesh, Eager, All)
	perAll.Detector = Periodic
	perAll.Period = 2 * sim.Millisecond
	cases = append(cases, perAll)

	for _, cfg := range cases {
		name := cfg.PolicyName() + "/" + cfg.Detector.String()
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Executed != int64(profile.Tasks) {
			t.Errorf("%s: executed %d tasks, want %d", name, res.Executed, profile.Tasks)
		}
		var busy sim.Time
		for _, st := range res.Sim.Nodes {
			busy += st.Busy
		}
		if busy != profile.Work {
			t.Errorf("%s: total busy %v, want %v (work conservation)", name, busy, profile.Work)
		}
		if res.Phases < 2 {
			t.Errorf("%s: only %d system phases", name, res.Phases)
		}
		if res.Nonlocal > res.Executed {
			t.Errorf("%s: nonlocal %d > executed %d", name, res.Nonlocal, res.Executed)
		}
		if res.Time <= 0 {
			t.Errorf("%s: nonpositive time %v", name, res.Time)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := queensCfg(topo.NewMesh(4, 2), Lazy, Any)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Nonlocal != b.Nonlocal || a.Phases != b.Phases ||
		a.Sim.Messages != b.Sim.Messages {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

// TestMultiRoundApp drives a two-round synthetic workload through the
// round barrier logic.
type twoRound struct{}

func (twoRound) Name() string { return "two-round" }
func (twoRound) Rounds() int  { return 2 }
func (twoRound) Roots(r int) []app.Spawn {
	out := make([]app.Spawn, 5*(r+1))
	for i := range out {
		out[i] = app.Spawn{Data: r, Size: 8}
	}
	return out
}
func (twoRound) Execute(data any, emit func(app.Spawn)) sim.Time {
	return sim.Millisecond
}

func TestMultiRoundApp(t *testing.T) {
	cfg := Config{Mesh: topo.NewMesh(2, 2), App: twoRound{}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 15 {
		t.Errorf("executed %d, want 15", res.Executed)
	}
	// Phases: distribute round 0 (1), drains + redistributions, a
	// zero-total phase per round boundary, final zero phase. At least 4.
	if res.Phases < 4 {
		t.Errorf("phases = %d, want >= 4", res.Phases)
	}
}

func TestEmptyApp(t *testing.T) {
	// An app with zero tasks must terminate after one zero-total phase
	// per round.
	cfg := Config{Mesh: topo.NewMesh(2, 2), App: dummyApp{}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 0 || res.Phases != 1 {
		t.Errorf("executed=%d phases=%d", res.Executed, res.Phases)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{App: dummyApp{}}); err == nil {
		t.Error("nil mesh accepted")
	}
	if _, err := Run(Config{Mesh: topo.NewMesh(2, 2)}); err == nil {
		t.Error("nil app accepted")
	}
	bad := Config{Mesh: topo.NewMesh(2, 2), App: dummyApp{}, Detector: Periodic}
	if _, err := Run(bad); err == nil {
		t.Error("periodic detector without period accepted")
	}
}

func TestLazyBeatsEagerOnPhases(t *testing.T) {
	// Lazy scheduling executes generated tasks without waiting for a
	// system phase, so it needs no more phases than eager (the paper's
	// argument for the one-queue policy).
	mesh := topo.NewMesh(4, 2)
	lazy, err := Run(queensCfg(mesh, Lazy, Any))
	if err != nil {
		t.Fatal(err)
	}
	eager, err := Run(queensCfg(mesh, Eager, Any))
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Phases > eager.Phases {
		t.Errorf("lazy used %d phases, eager %d — expected lazy <= eager", lazy.Phases, eager.Phases)
	}
}

func TestNonlocalFractionReasonable(t *testing.T) {
	// RIPS should keep most executions local — far better than the
	// ~1-1/N of random placement (Table I's central claim). Disable
	// the ANY init backoff: on this toy workload (70ms of work) a 3ms
	// backoff concentrates generation on few nodes, which is the
	// tradeoff the backoff knob deliberately makes on sparse phases.
	cfg := queensCfg(topo.NewMesh(4, 4), Lazy, Any)
	cfg.InitBackoff = -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Nonlocal) / float64(res.Executed)
	if frac > 0.5 {
		t.Errorf("nonlocal fraction %.2f, want well below random's %.2f", frac, 1-1.0/16)
	}
}

func TestPolicyNames(t *testing.T) {
	c := Config{Local: Lazy, Global: Any}
	if c.PolicyName() != "any-lazy" {
		t.Errorf("PolicyName = %q", c.PolicyName())
	}
	c = Config{Local: Eager, Global: All}
	if c.PolicyName() != "all-eager" {
		t.Errorf("PolicyName = %q", c.PolicyName())
	}
	if Signal.String() != "signal" || Periodic.String() != "periodic" {
		t.Error("detector names wrong")
	}
}

func TestPhaseTotalsCurve(t *testing.T) {
	res, err := Run(queensCfg(topo.NewMesh(4, 4), Lazy, Any))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.PhaseTotals)) != res.Phases {
		t.Fatalf("phase log has %d entries for %d phases", len(res.PhaseTotals), res.Phases)
	}
	if res.PhaseTotals[0] != 1 {
		t.Errorf("first phase saw %d tasks, want the 1 root", res.PhaseTotals[0])
	}
	if last := res.PhaseTotals[len(res.PhaseTotals)-1]; last != 0 {
		t.Errorf("last phase saw %d tasks, want 0 (termination)", last)
	}
	max := 0
	for _, v := range res.PhaseTotals {
		if v > max {
			max = v
		}
	}
	if max < 100 {
		t.Errorf("peak phase total %d — expected the expansion wave", max)
	}
}
