package ripsrt

import (
	"strings"
	"testing"

	"rips/internal/invariant"
	"rips/internal/topo"
)

// These tests pin the invariant wiring inside the runtime: the checks
// must be live while the ripsrt suite runs (so the conservation and
// Theorem 1 assertions in the mesh/tree/cube system phases execute on
// every test in this package), and a violated invariant must surface
// as a typed *invariant.Violation.

// catchViolation runs f and returns the *invariant.Violation it
// panics with, failing the test if it returns normally or panics with
// anything else.
func catchViolation(t *testing.T, f func()) (v *invariant.Violation) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected an invariant violation, got none")
		}
		var ok bool
		if v, ok = r.(*invariant.Violation); !ok {
			t.Fatalf("panic value %T, want *invariant.Violation", r)
		}
	}()
	f()
	return nil
}

func TestInvariantsLiveDuringTests(t *testing.T) {
	if !invariant.Enabled() {
		t.Fatal("invariant checks are disabled while the ripsrt suite runs; unset RIPS_INVARIANTS and drop -tags noinvariants")
	}
}

func TestUnsupportedTopologyViolation(t *testing.T) {
	v := catchViolation(t, func() {
		newPhaseScheduler(topo.NewRing(4), 0, false)
	})
	if !strings.Contains(v.Msg, "no system-phase scheduler") {
		t.Errorf("violation = %q, want mention of missing system-phase scheduler", v.Msg)
	}
}

func TestTakeTasksNegativeViolation(t *testing.T) {
	st := &nodeState{}
	v := catchViolation(t, func() {
		st.takeTasks(-1)
	})
	if !strings.Contains(v.Msg, "takeTasks(-1)") {
		t.Errorf("violation = %q, want the rejected count", v.Msg)
	}
}

// TestRunWithInvariantsForcedOn re-runs a standard mesh workload with
// the checks explicitly enabled: every system phase passes through
// Conserved, BalancedWithinOne (Theorem 1) and Locality (Theorem 2)
// without firing.
func TestRunWithInvariantsForcedOn(t *testing.T) {
	restore := invariant.SetEnabled(true)
	defer restore()

	cfg := Config{
		Mesh:   topo.NewMesh(4, 4),
		App:    chaosApp{seed: 11, maxDepth: 4, roots: 4},
		Local:  Eager,
		Global: All,
		Seed:   7,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != res.Generated {
		t.Errorf("executed %d of %d generated tasks", res.Executed, res.Generated)
	}
}
