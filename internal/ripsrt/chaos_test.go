package ripsrt

import (
	"testing"
	"testing/quick"

	"rips/internal/app"
	"rips/internal/sim"
	"rips/internal/topo"
)

// chaosApp is a synthetic workload whose task tree is derived entirely
// from payload hashes, so it is deterministic per seed yet arbitrarily
// irregular — fan-out, depth and grain all vary pseudo-randomly.
type chaosApp struct {
	seed     uint64
	maxDepth int
	roots    int
}

// hash is splitmix64; cheap, stateless determinism per payload.
func hash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

type chaosTask struct {
	depth int
	key   uint64
}

func (c chaosApp) Name() string { return "chaos" }
func (c chaosApp) Rounds() int  { return 1 }
func (c chaosApp) Roots(int) []app.Spawn {
	out := make([]app.Spawn, c.roots)
	for i := range out {
		out[i] = app.Spawn{Data: chaosTask{depth: 0, key: hash(c.seed + uint64(i))}, Size: 16}
	}
	return out
}
func (c chaosApp) Execute(data any, emit func(app.Spawn)) sim.Time {
	t := data.(chaosTask)
	h := hash(t.key)
	if t.depth < c.maxDepth {
		// 0..3 children, hash-determined.
		for i := uint64(0); i < h%4; i++ {
			emit(app.Spawn{Data: chaosTask{depth: t.depth + 1, key: hash(t.key + i + 1)}, Size: 16})
		}
	}
	// 10us..2.5ms of work, hash-determined.
	return sim.Time(10+h%2500) * sim.Microsecond
}

// countTasks sizes the tree sequentially for the oracle.
func (c chaosApp) countTasks() int {
	p := app.Measure(c)
	return p.Tasks
}

// TestChaosTrees drives random irregular task trees through random
// policy/machine combinations and checks the core invariants: every
// generated task executes exactly once and total busy time equals the
// sequential work.
func TestChaosTrees(t *testing.T) {
	f := func(seed uint64, policyBits, meshBits uint8) bool {
		a := chaosApp{seed: seed, maxDepth: 3 + int(seed%4), roots: 1 + int(seed%5)}
		meshes := []topo.Topology{
			topo.NewMesh(2, 2), topo.NewMesh(4, 2), topo.NewMesh(3, 3),
			topo.NewTree(7), topo.NewHypercube(3),
		}
		cfg := Config{
			Topo:   meshes[int(meshBits)%len(meshes)],
			App:    a,
			Local:  LocalPolicy(policyBits % 2),
			Global: GlobalPolicy((policyBits / 2) % 2),
			Seed:   int64(seed),
		}
		res, err := Run(cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := a.countTasks()
		if res.Executed != int64(want) {
			t.Logf("seed %d: executed %d, want %d", seed, res.Executed, want)
			return false
		}
		profile := app.Measure(a)
		var busy sim.Time
		for _, st := range res.Sim.Nodes {
			busy += st.Busy
		}
		if busy != profile.Work {
			t.Logf("seed %d: busy %v, want %v", seed, busy, profile.Work)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
