package rips_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"rips"
)

// TestPoolDomains covers the public domain-partitioned pool: the
// resolved partition is visible through Domains (clamped into
// [1, workers], inherited by sub-pools), a negative count is rejected,
// and a Hybrid run on a domain-placed lease returns the exact answer a
// pool-less run does.
func TestPoolDomains(t *testing.T) {
	if _, err := rips.NewPoolDomains(4, -1); err == nil {
		t.Fatal("NewPoolDomains(4, -1) succeeded, want error")
	}
	pool, err := rips.NewPoolDomains(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Domains() != 2 {
		t.Fatalf("Domains() = %d, want 2", pool.Domains())
	}
	sub, err := pool.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Release()
	if sub.Domains() != 2 {
		t.Fatalf("sub-pool Domains() = %d, want the root's 2", sub.Domains())
	}

	cfg, err := rips.NewConfig(
		rips.WithWorkers(4),
		rips.WithBackend(rips.Hybrid),
		rips.WithDomains(2),
		rips.WithPool(sub),
	)
	if err != nil {
		t.Fatal(err)
	}
	a := rips.NQueens(8)
	got, err := rips.Run(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bare := cfg
	bare.Pool = nil
	want, err := rips.Run(a, bare)
	if err != nil {
		t.Fatal(err)
	}
	if got.AppResult != want.AppResult || got.Tasks != want.Tasks || got.Domains != 2 {
		t.Fatalf("leased hybrid run = result %d tasks %d domains %d; pool-less run = %d/%d",
			got.AppResult, got.Tasks, got.Domains, want.AppResult, want.Tasks)
	}
}

// TestPoolLeaseEdgeCases pins the sub-pool leasing contract at its
// boundaries through the public API: a zero- or negative-size Split is
// ErrBadLeaseSize, over-capacity Split and Resize are
// ErrInsufficientWorkers and leave every lease unchanged, a released
// lease refuses Resize with ErrLeaseReleased, double Release is a
// no-op, and a closed root refuses Split with ErrPoolClosed. Each
// refusal is checked with errors.Is — the errors are typed API, not
// message text.
func TestPoolLeaseEdgeCases(t *testing.T) {
	pool, err := rips.NewPool(4)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{0, -1} {
		if _, err := pool.Split(n); !errors.Is(err, rips.ErrBadLeaseSize) {
			t.Errorf("Split(%d) = %v, want ErrBadLeaseSize", n, err)
		}
	}
	if free := pool.Free(); free != 4 {
		t.Fatalf("free = %d after refused splits, want 4", free)
	}

	// Over-capacity Split refuses immediately (leasing never blocks).
	if _, err := pool.Split(5); !errors.Is(err, rips.ErrInsufficientWorkers) {
		t.Errorf("Split(5) on a 4-pool = %v, want ErrInsufficientWorkers", err)
	}

	sub, err := pool.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.Workers(); got != 2 {
		t.Fatalf("sub.Workers() = %d, want 2", got)
	}
	if free := pool.Free(); free != 2 {
		t.Fatalf("free = %d with a 2-lease out, want 2", free)
	}

	// Resize beyond the free set: refused, lease unchanged.
	if err := sub.Resize(5); !errors.Is(err, rips.ErrInsufficientWorkers) {
		t.Errorf("Resize(5) = %v, want ErrInsufficientWorkers", err)
	}
	if got := sub.Workers(); got != 2 {
		t.Errorf("lease changed shape after refused Resize: %d workers, want 2", got)
	}
	if err := sub.Resize(0); !errors.Is(err, rips.ErrBadLeaseSize) {
		t.Errorf("Resize(0) = %v, want ErrBadLeaseSize", err)
	}

	// Growing to exactly the free set succeeds; shrinking returns the
	// surplus to the root.
	if err := sub.Resize(4); err != nil {
		t.Fatalf("Resize(4): %v", err)
	}
	if free := pool.Free(); free != 0 {
		t.Errorf("free = %d with the whole pool leased, want 0", free)
	}
	if err := sub.Resize(1); err != nil {
		t.Fatalf("Resize(1): %v", err)
	}
	if free := pool.Free(); free != 3 {
		t.Errorf("free = %d after shrinking to 1, want 3", free)
	}

	// Double Release: idempotent; the workers come back exactly once.
	sub.Release()
	if free := pool.Free(); free != 4 {
		t.Fatalf("free = %d after Release, want 4", free)
	}
	sub.Release()
	if free := pool.Free(); free != 4 {
		t.Fatalf("free = %d after double Release, want 4 (workers returned twice?)", free)
	}
	if err := sub.Resize(2); !errors.Is(err, rips.ErrLeaseReleased) {
		t.Errorf("Resize on a released lease = %v, want ErrLeaseReleased", err)
	}

	pool.Close()
	if _, err := pool.Split(1); !errors.Is(err, rips.ErrPoolClosed) {
		t.Errorf("Split on a closed pool = %v, want ErrPoolClosed", err)
	}
}

// TestPoolLeaseConcurrent hammers Split/Resize/Release from many
// goroutines and checks the capacity invariant the arbiter depends on:
// leased + free == workers at every quiescent point, no lease is ever
// granted beyond capacity, and after every lease is released the full
// pool is free again. Run under -race this also exercises the lock
// protocol of the lease ledger.
func TestPoolLeaseConcurrent(t *testing.T) {
	const workers = 8
	pool, err := rips.NewPool(workers)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	var mu sync.Mutex
	leased := 0 // tracked under mu from the goroutines' own accounting

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				n := 1 + rng.Intn(3)
				sub, err := pool.Split(n)
				if err != nil {
					if !errors.Is(err, rips.ErrInsufficientWorkers) {
						t.Errorf("Split(%d): %v", n, err)
					}
					continue
				}
				mu.Lock()
				leased += n
				if leased > workers {
					t.Errorf("leases total %d workers, capacity is %d", leased, workers)
				}
				mu.Unlock()

				size := n
				if rng.Intn(2) == 0 {
					grown := size + 1
					if err := sub.Resize(grown); err == nil {
						mu.Lock()
						leased++
						size = grown
						if leased > workers {
							t.Errorf("leases total %d workers after Resize, capacity is %d", leased, workers)
						}
						mu.Unlock()
					} else if !errors.Is(err, rips.ErrInsufficientWorkers) {
						t.Errorf("Resize(%d): %v", grown, err)
					}
				}

				sub.Release()
				if rng.Intn(4) == 0 {
					sub.Release() // double release must stay a no-op under contention
				}
				mu.Lock()
				leased -= size
				mu.Unlock()
			}
		}(int64(g))
	}
	wg.Wait()

	if leased != 0 {
		t.Fatalf("accounting leak: %d workers still recorded as leased", leased)
	}
	if free := pool.Free(); free != workers {
		t.Fatalf("free = %d after all leases released, want %d", free, workers)
	}
	// The pool still works after the churn.
	sub, err := pool.Split(workers)
	if err != nil {
		t.Fatalf("Split(%d) after churn: %v", workers, err)
	}
	sub.Release()
}
