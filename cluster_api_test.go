package rips_test

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"rips"
)

// TestClusterConfigValidate pins the Cluster backend's cross-checks:
// the cluster runs the phase protocol only, across processes — so no
// Steal variant, no periodic detector, no local pool, no affinity
// domains.
func TestClusterConfigValidate(t *testing.T) {
	valid := rips.Config{Procs: 4, Backend: rips.Cluster}
	if err := valid.Validate(); err != nil {
		t.Fatalf("minimal cluster config rejected: %v", err)
	}

	cases := []struct {
		name string
		cfg  rips.Config
		want string
	}{
		{"steal algorithm", rips.Config{Procs: 4, Backend: rips.Cluster, Algorithm: rips.Steal}, "Algorithm must be RIPS"},
		{"periodic detector", rips.Config{Procs: 4, Backend: rips.Cluster, Periodic: rips.Time(1)}, "periodic detector"},
		{"local pool", rips.Config{Procs: 4, Backend: rips.Cluster, Pool: mustPool(t, 2)}, "not a local worker pool"},
		{"domains", rips.Config{Procs: 4, Backend: rips.Cluster, Domains: 2}, "Hybrid backend"},
		{"negative timeout", rips.Config{Procs: 4, Backend: rips.Cluster, Timeout: -time.Second}, "Timeout"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func mustPool(t *testing.T, n int) *rips.Pool {
	t.Helper()
	p, err := rips.NewPool(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestRunRefusesCluster pins that the in-process entry points refuse
// cluster configs with a pointer at the right front door.
func TestRunRefusesCluster(t *testing.T) {
	cfg, err := rips.NewConfig(rips.WithWorkers(4), rips.WithBackend(rips.Cluster))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rips.RunContext(context.Background(), rips.NQueens(6), cfg)
	if err == nil {
		t.Fatal("RunContext executed a cluster config in-process")
	}
	if !strings.Contains(err.Error(), "-cluster") {
		t.Errorf("error %q does not point at ripsd -cluster", err)
	}
}

// TestOptionsConfigRoundTrip is the options ↔ wire-config property
// test: a Config assembled from the full option surface must survive
// EncodeConfig → Decode bit for bit, Timeout included — the document a
// ripsd stores or a cluster peer receives reconstructs the exact
// configuration the options built.
func TestOptionsConfigRoundTrip(t *testing.T) {
	cfg, err := rips.NewConfig(
		rips.WithMesh(2, 3),
		rips.WithAlgorithm(rips.RIPS),
		rips.WithBackend(rips.Cluster),
		rips.WithEager(),
		rips.WithAll(),
		rips.WithRIDUpdateFactor(0.5),
		rips.WithInitBackoff(rips.Time(2000)),
		rips.WithTimeout(3*time.Second),
		rips.WithSeed(42),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rips.EncodeConfig(cfg).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cfg) {
		t.Fatalf("round-trip:\n got %+v\nwant %+v", got, cfg)
	}
	if got.Timeout != 3*time.Second {
		t.Errorf("Timeout lost in transit: %v", got.Timeout)
	}
}

// TestJobSpecEncodeDecode pins the rips-job/v1 codec: stamping,
// lossless round-trips, and strict rejection of unknown fields, schema
// skew and trailing bytes — the submission semantics shared verbatim
// by POST /v1/jobs and cluster peer forwarding.
func TestJobSpecEncodeDecode(t *testing.T) {
	spec := rips.JobSpec{
		App:      "nq",
		Size:     12,
		Config:   rips.ConfigJSON{Backend: "cluster", Topology: "mesh", Seed: 7},
		Tenant:   "acme",
		Priority: "high",
	}
	data, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rips.DecodeJobSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != rips.JobSpecSchema {
		t.Errorf("decoded schema %q, want %q", got.Schema, rips.JobSpecSchema)
	}
	want := spec
	want.Schema = rips.JobSpecSchema
	if got != want {
		t.Fatalf("round-trip:\n got %+v\nwant %+v", got, want)
	}

	// A bare submission is version 1, stamped on the way out.
	bare, err := rips.DecodeJobSpec([]byte(`{"app": "nq"}`))
	if err != nil {
		t.Fatal(err)
	}
	if bare.Schema != rips.JobSpecSchema || bare.App != "nq" {
		t.Errorf("bare decode = %+v", bare)
	}

	for name, body := range map[string]string{
		"unknown top-level field": `{"app": "nq", "procs": 4}`,
		"unknown config field":    `{"app": "nq", "config": {"workers": 4}}`,
		"schema skew":             `{"schema": "rips-job/v2", "app": "nq"}`,
		"trailing data":           `{"app": "nq"}{"app": "ida"}`,
		"not an object":           `"nq"`,
	} {
		if _, err := rips.DecodeJobSpec([]byte(body)); err == nil {
			t.Errorf("%s: decoder accepted %s", name, body)
		}
	}
}

// TestAppRegistry pins the public registry surface: built-in families
// resolve, sizes validate, unknown names error listing what exists,
// and duplicate registration panics like duplicate http.Handle
// patterns.
func TestAppRegistry(t *testing.T) {
	names := rips.Apps()
	for _, want := range []string{"gromos", "ida", "nq"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Apps() = %v, missing built-in %q", names, want)
		}
	}
	if _, err := rips.LookupApp("nq", 8); err != nil {
		t.Errorf("LookupApp(nq, 8): %v", err)
	}
	if _, err := rips.LookupApp("nq", 0); err != nil {
		t.Errorf("LookupApp(nq, 0) default size: %v", err)
	}
	if _, err := rips.LookupApp("ida", 9); err == nil {
		t.Error("LookupApp(ida, 9) accepted an out-of-range configuration")
	}
	_, err := rips.LookupApp("nope", 0)
	if err == nil {
		t.Fatal("LookupApp(nope) resolved")
	}
	if !strings.Contains(err.Error(), "nq") {
		t.Errorf("unknown-family error %q does not list the registered families", err)
	}

	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterApp did not panic")
		}
	}()
	rips.RegisterApp("nq", func(int) (rips.App, error) { return nil, nil })
}
