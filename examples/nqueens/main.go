// This example reproduces a slice of the paper's Table I: the
// exhaustive 13-Queens search on a simulated 32-processor mesh under
// all four scheduling algorithms, reporting tasks, locality, overhead,
// idle time, execution time and efficiency.
package main

import (
	"fmt"
	"log"

	"rips"
)

func main() {
	queens := rips.NQueens(13)
	profile := rips.Measure(queens)
	fmt.Printf("%s: %d tasks, sequential time %v\n\n", queens.Name(), profile.Tasks, profile.Work)
	fmt.Printf("%-9s %9s %8s %8s %8s %5s\n", "sched", "nonlocal", "Th", "Ti", "T", "eff")

	for _, alg := range []rips.Algorithm{rips.Random, rips.Gradient, rips.RID, rips.RIPS} {
		res, err := rips.RunProfiled(queens, profile, rips.Config{Procs: 32, Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %9d %8.2f %8.2f %8.2f %4.0f%%\n",
			alg, res.Nonlocal,
			res.Overhead.Seconds(), res.Idle.Seconds(), res.Time.Seconds(),
			100*res.Efficiency)
	}
	fmt.Println("\nRIPS should show by far the fewest nonlocal tasks and the")
	fmt.Println("best efficiency — the paper's central Table I result.")
}
