// Quickstart: balance a random load with the Mesh Walking Algorithm
// and run a small N-Queens search under RIPS — the two entry points of
// the library in ~40 lines.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"rips"
)

func main() {
	// 1. Pure scheduling: plan a balanced redistribution of an uneven
	// load on an 4x4 mesh and compare with the optimal cost.
	rng := rand.New(rand.NewSource(7))
	load := make([]int, 16)
	for i := range load {
		load[i] = rng.Intn(20)
	}
	plan, err := rips.BalanceMesh(4, 4, load)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := rips.OptimalCost(4, 4, load)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load %v\n", load)
	fmt.Printf("MWA balances it in %d bulk moves, %d task-link transfers (optimal %d), %d comm steps\n",
		len(plan.Moves), plan.Cost, opt, plan.Steps)
	fmt.Printf("every node ends with %d or %d tasks\n\n", plan.Quota[len(plan.Quota)-1], plan.Quota[0])

	// 2. Whole-system simulation: run 11-Queens on a simulated
	// 16-processor mesh under RIPS and under random allocation.
	queens := rips.NQueens(11)
	profile := rips.Measure(queens)
	for _, alg := range []rips.Algorithm{rips.RIPS, rips.Random} {
		cfg, err := rips.NewConfig(rips.WithWorkers(16), rips.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		res, err := rips.RunProfiledContext(context.Background(), queens, profile, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s T=%-12v eff=%3.0f%%  nonlocal=%4d/%d tasks\n",
			alg, res.Time, 100*res.Efficiency, res.Nonlocal, res.Tasks)
	}
}
