// This example runs the paper's second application — IDA* search on
// the 15-puzzle — under RIPS, showing the round structure: each IDA*
// iteration is a globally synchronized round whose early instances
// have almost no parallelism, which is why Table I's efficiencies for
// this workload are the lowest of the three applications.
package main

import (
	"fmt"
	"log"

	"rips"
)

func main() {
	puzzle := rips.Puzzle15(1)
	profile := rips.Measure(puzzle)

	fmt.Printf("%s: %d iterations, %d tasks, sequential time %v\n",
		puzzle.Name(), puzzle.Rounds(), profile.Tasks, profile.Work)
	fmt.Println("\nper-iteration profile (note the nearly-serial early rounds):")
	for r, rp := range profile.Rounds {
		fmt.Printf("  iteration %2d: %8d tasks, work %12v, largest task %v\n",
			r+1, rp.Tasks, rp.Work, rp.MaxTask)
	}

	for _, procs := range []int{16, 32} {
		res, err := rips.RunProfiled(puzzle, profile, rips.Config{Procs: procs})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nRIPS on %d processors: T=%v speedup=%.1f eff=%.0f%% (%d system phases)\n",
			procs, res.Time, res.Speedup, 100*res.Efficiency, res.Phases)
	}
	fmt.Printf("\noptimal efficiency on 32 processors: %.1f%% (Table II)\n",
		100*profile.OptimalEfficiency(32))
}
