// This example shows how to schedule your own computation: implement
// the rips.App interface and hand it to rips.RunContext. The workload is
// adaptive quadrature — numerically integrating a spiky function by
// recursive interval splitting — a classic divide-and-conquer whose
// task tree is highly irregular, exactly the "dynamic problem" class
// the paper targets.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"rips"
)

// interval is one integration task: approximate f over [a,b].
type interval struct {
	a, b float64
}

// quadrature integrates f(x) = sum of sharp peaks; intervals near a
// peak split much deeper than flat regions, so task grain sizes are
// wildly uneven.
type quadrature struct {
	tol float64
}

func f(x float64) float64 {
	s := 0.0
	for _, p := range []float64{0.13, 0.57, 0.891} {
		s += 0.01 / ((x-p)*(x-p) + 1e-4)
	}
	return s + math.Sin(8*x)
}

// simpson is the three-point Simpson rule on [a,b].
func simpson(a, b float64) float64 {
	return (b - a) / 6 * (f(a) + 4*f((a+b)/2) + f(b))
}

func (q quadrature) Name() string { return "adaptive-quadrature" }
func (q quadrature) Rounds() int  { return 1 }

func (q quadrature) Roots(round int) []rips.Spawn {
	// Start from 8 coarse panels.
	out := make([]rips.Spawn, 8)
	for i := range out {
		a := float64(i) / 8
		out[i] = rips.Spawn{Data: interval{a, a + 0.125}, Size: 16}
	}
	return out
}

func (q quadrature) Execute(data any, emit func(rips.Spawn)) rips.Time {
	iv := data.(interval)
	mid := (iv.a + iv.b) / 2
	whole := simpson(iv.a, iv.b)
	left := simpson(iv.a, mid)
	right := simpson(mid, iv.b)
	if math.Abs(left+right-whole) > q.tol*(iv.b-iv.a) {
		// Too inaccurate: split into two subtasks.
		emit(rips.Spawn{Data: interval{iv.a, mid}, Size: 16})
		emit(rips.Spawn{Data: interval{mid, iv.b}, Size: 16})
	}
	// Each task costs three function evaluations' worth of work.
	return 120 * rips.Microsecond
}

func main() {
	q := quadrature{tol: 1e-7}
	profile := rips.Measure(q)
	fmt.Printf("%s generates %d tasks (%v of work) from 8 roots\n\n",
		q.Name(), profile.Tasks, profile.Work)

	for _, alg := range []rips.Algorithm{rips.RIPS, rips.Random, rips.RID} {
		cfg, err := rips.NewConfig(
			rips.WithWorkers(16),
			rips.WithAlgorithm(alg),
			rips.WithSeed(3),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := rips.RunProfiledContext(context.Background(), q, profile, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s T=%-12v speedup=%5.1f eff=%3.0f%% nonlocal=%d\n",
			alg, res.Time, res.Speedup, 100*res.Efficiency, res.Nonlocal)
	}
}
