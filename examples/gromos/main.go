// This example runs the molecular-dynamics surrogate (the paper's
// GROMOS workload) across the three cutoff radii. The task set is
// static — 4986 charge groups, block-distributed like a real SPMD MD
// code — but per-task cost is nonuniform, so a load balancer is still
// needed; RIPS corrects the imbalance while moving only a small
// fraction of the tasks.
package main

import (
	"fmt"
	"log"

	"rips"
)

func main() {
	fmt.Printf("%-12s %10s %9s %8s %8s %6s\n", "cutoff", "Ts", "nonlocal", "Ti", "T", "eff")
	for _, cutoff := range []float64{8, 12, 16} {
		md := rips.MolecularDynamics(cutoff)
		profile := rips.Measure(md)
		res, err := rips.RunProfiled(md, profile, rips.Config{Procs: 32})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %9.1fs %4d/%4d %7.2fs %7.2fs %5.0f%%\n",
			md.Name(), profile.Work.Seconds(),
			res.Nonlocal, res.Tasks,
			res.Idle.Seconds(), res.Time.Seconds(), 100*res.Efficiency)
	}
	fmt.Println("\nwork grows roughly with the cube of the cutoff radius, and")
	fmt.Println("only ~10-15% of tasks migrate — the imbalance correction.")
}
