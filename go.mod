module rips

go 1.22
