package rips_test

import (
	"testing"
	"time"

	"rips"
)

// TestParallelBackend runs the real shared-memory backend through the
// public facade and checks the wall-clock measures and the exactness
// of the answer.
func TestParallelBackend(t *testing.T) {
	a := rips.NQueens(10)
	p := rips.Measure(a)
	for _, alg := range []rips.Algorithm{rips.RIPS, rips.Steal} {
		res, err := rips.RunProfiled(a, p, rips.Config{Procs: 4, Backend: rips.Parallel, Algorithm: alg, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Tasks != int64(p.Tasks) {
			t.Errorf("%v: tasks %d, want %d", alg, res.Tasks, p.Tasks)
		}
		if res.AppResult != p.Result {
			t.Errorf("%v: AppResult %d, want %d solutions", alg, res.AppResult, p.Result)
		}
		if res.Wall <= 0 {
			t.Errorf("%v: Wall = %v", alg, res.Wall)
		}
		if res.Time != 0 {
			t.Errorf("%v: virtual Time = %v on the Parallel backend", alg, res.Time)
		}
		if res.Efficiency <= 0 || res.Efficiency > 1 {
			t.Errorf("%v: efficiency %v", alg, res.Efficiency)
		}
		if alg == rips.RIPS && res.Phases < 1 {
			t.Errorf("RIPS: phases %d", res.Phases)
		}
	}
}

// TestHybridBackend runs the hierarchical backend through the public
// facade: exact answer, resolved domain count, wall-clock measures.
func TestHybridBackend(t *testing.T) {
	a := rips.NQueens(10)
	p := rips.Measure(a)
	res, err := rips.RunProfiled(a, p, rips.Config{Procs: 4, Backend: rips.Hybrid, Domains: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != int64(p.Tasks) || res.AppResult != p.Result {
		t.Errorf("tasks %d result %d, want %d and %d", res.Tasks, res.AppResult, p.Tasks, p.Result)
	}
	if res.Domains != 2 {
		t.Errorf("Domains = %d, want the explicit 2", res.Domains)
	}
	if res.Phases < 1 || res.Wall <= 0 || res.Time != 0 {
		t.Errorf("phases=%d wall=%v virtual=%v", res.Phases, res.Wall, res.Time)
	}

	// Domains zero auto-detects and reports what it resolved to.
	res, err = rips.RunProfiled(a, p, rips.Config{Procs: 4, Backend: rips.Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	if res.Domains < 1 || res.Domains > 4 {
		t.Errorf("auto-detected Domains = %d, want in [1, 4]", res.Domains)
	}
	if res.AppResult != p.Result {
		t.Errorf("auto-domain AppResult = %d, want %d", res.AppResult, p.Result)
	}
}

// TestParallelBackendPolicyKnobs exercises the Eager/All knobs on the
// real backends.
func TestParallelBackendPolicyKnobs(t *testing.T) {
	a := rips.NQueens(9)
	for _, cfg := range []rips.Config{
		{Procs: 4, Backend: rips.Parallel, Eager: true},
		{Procs: 4, Backend: rips.Parallel, All: true},
		{Procs: 7, Backend: rips.Parallel, Topology: "tree"},
		{Procs: 8, Backend: rips.Parallel, Topology: "hypercube"},
		{Procs: 4, Backend: rips.Hybrid, Domains: 2, Eager: true},
		{Procs: 4, Backend: rips.Hybrid, Domains: 2, All: true},
		{Procs: 7, Backend: rips.Hybrid, Domains: 2, Topology: "tree"},
		{Procs: 8, Backend: rips.Hybrid, Domains: 2, Topology: "hypercube"},
	} {
		res, err := rips.Run(a, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.Phases < 1 {
			t.Errorf("%+v: phases %d", cfg, res.Phases)
		}
	}
}

// TestParallelBackendErrors pins the invalid backend/algorithm combos.
func TestParallelBackendErrors(t *testing.T) {
	a := rips.NQueens(8)
	if _, err := rips.Run(a, rips.Config{Procs: 4, Algorithm: rips.Steal}); err == nil {
		t.Error("steal on the simulator accepted")
	}
	if _, err := rips.Run(a, rips.Config{Procs: 4, Backend: rips.Parallel, Algorithm: rips.Random}); err == nil {
		t.Error("random baseline on the Parallel backend accepted")
	}
	if _, err := rips.Run(a, rips.Config{Procs: 4, Backend: rips.Parallel, Periodic: rips.Millisecond}); err == nil {
		t.Error("periodic detector on the Parallel backend accepted")
	}
	if _, err := rips.Run(a, rips.Config{Procs: 4, Backend: rips.Hybrid, Algorithm: rips.Steal}); err == nil {
		t.Error("steal algorithm on the Hybrid backend accepted")
	}
	if _, err := rips.Run(a, rips.Config{Procs: 4, Backend: rips.Parallel, Domains: 2}); err == nil {
		t.Error("Domains on the Parallel backend accepted")
	}
	if _, err := rips.Run(a, rips.Config{Procs: 4, Domains: -1, Backend: rips.Hybrid}); err == nil {
		t.Error("negative Domains accepted")
	}
}

// TestZeroBackoffTerminates is the regression test for the detector
// throttles: with the backoff disabled entirely (negative = zero
// wait), both backends must still terminate with the right answer —
// the phase-indexed transfer requests guarantee progress even when
// every drained node initiates instantly.
func TestZeroBackoffTerminates(t *testing.T) {
	a := rips.NQueens(9)
	p := rips.Measure(a)

	res, err := rips.RunProfiled(a, p, rips.Config{Procs: 8, InitBackoff: -1})
	if err != nil {
		t.Fatalf("simulate with zero backoff: %v", err)
	}
	if res.Tasks != int64(p.Tasks) {
		t.Errorf("simulate with zero backoff: tasks %d, want %d", res.Tasks, p.Tasks)
	}
	// Zero backoff means more (emptier) phases, never fewer tasks.
	thr, err := rips.RunProfiled(a, p, rips.Config{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases < thr.Phases {
		t.Errorf("zero backoff ran %d phases, throttled ran %d", res.Phases, thr.Phases)
	}

	pres, err := rips.RunProfiled(a, p, rips.Config{Procs: 4, Backend: rips.Parallel, DetectInterval: -time.Nanosecond})
	if err != nil {
		t.Fatalf("parallel with zero detect interval: %v", err)
	}
	if pres.Tasks != int64(p.Tasks) || pres.AppResult != p.Result {
		t.Errorf("parallel with zero detect interval: tasks %d result %d, want %d and %d",
			pres.Tasks, pres.AppResult, p.Tasks, p.Result)
	}
}

func TestBackendStrings(t *testing.T) {
	if rips.Simulate.String() != "simulate" || rips.Parallel.String() != "parallel" || rips.Hybrid.String() != "hybrid" {
		t.Fatalf("Backend strings = %q, %q, %q", rips.Simulate.String(), rips.Parallel.String(), rips.Hybrid.String())
	}
	if rips.Steal.String() != "steal" {
		t.Fatalf("Steal.String() = %q", rips.Steal.String())
	}
}
