// Package rips is a library implementation of Runtime Incremental
// Parallel Scheduling (RIPS) — Wu & Shu, "High-Performance Incremental
// Scheduling on Massively Parallel Computers: A Global Approach"
// (SC'95) — together with the substrate the paper runs on: a
// deterministic virtual-time simulator of a mesh-connected
// distributed-memory machine, the Mesh Walking Algorithm and its
// optimal min-cost-flow reference, and the dynamic load-balancing
// baselines (randomized allocation, gradient model, receiver-initiated
// diffusion) the paper compares against.
//
// The typical entry point is RunContext: define a workload as an App
// (a deterministic task-parallel computation, possibly in several
// globally-synchronized rounds), pick a machine size and a scheduling
// Algorithm, and read off the paper's metrics — execution time,
// overhead, idle time, locality, efficiency — from the Result.
//
//	queens := rips.NQueens(13)
//	res, err := rips.RunContext(ctx, queens, rips.Config{Procs: 32})
//	fmt.Printf("T=%v eff=%.0f%%\n", res.Time, 100*res.Efficiency)
//
// Configs can be assembled with functional options (NewConfig,
// WithAlgorithm, WithBackend, ...), which validate eagerly; runs can be
// canceled through the context (the partial Result has Canceled set)
// and observed phase by phase through Config.OnPhase. Long-lived
// callers multiplexing many Parallel-backend runs share one worker
// Pool via Config.Pool — the substrate of the ripsd serving frontend
// (internal/serve).
//
// The full experiment harness that regenerates every table and figure
// of the paper lives in cmd/ripsbench.
package rips

import (
	"context"
	"fmt"
	"time"

	"rips/internal/app"
	"rips/internal/apps/gromos"
	"rips/internal/apps/nqueens"
	"rips/internal/apps/puzzle"
	"rips/internal/dynsched"
	"rips/internal/metrics"
	"rips/internal/par"
	"rips/internal/ripsrt"
	"rips/internal/sim"
	"rips/internal/topo"
)

// App is a deterministic task-parallel workload; see the app package
// for the contract. Implement it to schedule your own computation, or
// use the built-in workloads (NQueens, Puzzle15, MolecularDynamics).
type App = app.App

// Spawn is a task payload emitted by an App.
type Spawn = app.Spawn

// Profile is a sequential execution profile (Ts, per-round work).
type Profile = app.Profile

// Measure profiles an App sequentially; the result feeds efficiency
// and optimal-efficiency computations.
func Measure(a App) Profile { return app.Measure(a) }

// Time is a span of virtual time in nanoseconds.
type Time = sim.Time

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Algorithm selects the scheduling strategy.
type Algorithm int

const (
	// RIPS is runtime incremental parallel scheduling with the
	// ANY-Lazy transfer policy (the paper's best combination).
	RIPS Algorithm = iota
	// Random is randomized allocation: every new task goes to a
	// uniformly random processor.
	Random
	// Gradient is the gradient model: load diffuses hop-by-hop toward
	// the nearest underloaded processor.
	Gradient
	// RID is receiver-initiated diffusion: underloaded processors
	// request work from their most-loaded neighbour.
	RID
	// Static performs no load balancing at all: tasks execute where
	// they are generated (for block-distributed workloads, this is the
	// compile-time-only distribution the paper calls static
	// scheduling). A useful lower bound showing why a balancer is
	// needed at all.
	Static
	// Steal is Chase-Lev work stealing, the standard shared-memory
	// scheduler RIPS's global approach is compared against. It runs
	// only on the Parallel backend (there is no message-cost model for
	// it in the simulator).
	Steal
)

// Backend selects what actually executes the run.
type Backend int

const (
	// Simulate (the default) runs the workload on the deterministic
	// virtual-time simulator of a distributed-memory machine — the
	// paper's methodology, with modelled message costs.
	Simulate Backend = iota
	// Parallel runs the workload for real on P worker goroutines over
	// shared memory (internal/par): real cores, real phase barriers,
	// wall-clock results. Supports the RIPS and Steal algorithms.
	Parallel
	// Hybrid runs the workload for real like Parallel, but
	// hierarchically: the workers are partitioned into affinity (NUMA)
	// domains and pinned to their domain's CPUs, RIPS system phases
	// balance load across domains only, and within a domain workers
	// share tasks by Chase-Lev work stealing. The paper's global phase
	// protocol pays its barrier cost once per imbalance instead of once
	// per core, while the cheap intra-domain traffic never crosses a
	// memory boundary. The algorithm is RIPS by construction
	// (Config.Algorithm must be RIPS); Config.Domains shapes the
	// partition.
	Hybrid
	// Cluster runs the workload across several ripsd processes: every
	// cluster node plays one node of a cluster-level mirror topology,
	// the job's coordinator (elected by consistent-hash ring position)
	// runs the unchanged pure planners over length-prefixed rips-wire/v1
	// frames, and task moves ship as serialized batches over persistent
	// TCP connections (internal/cluster). The algorithm is RIPS by
	// construction; Domains, Pool and Periodic do not apply (Validate
	// rejects them). A Cluster config is not locally runnable —
	// RunContext refuses it; submit the job to a ripsd started with
	// -cluster instead.
	Cluster
)

// PhaseInfo is the per-system-phase progress snapshot delivered to
// Config.OnPhase; see metrics.PhaseInfo for the field contract.
type PhaseInfo = metrics.PhaseInfo

// Config describes one run.
type Config struct {
	// Procs is the machine size; the mesh is shaped MxM or MxM/2 like
	// the paper's. Set Rows/Cols instead for an explicit shape.
	Procs      int
	Rows, Cols int
	// Topology selects the machine interconnect: "" or "mesh" (the
	// paper's machine), "tree" (binary tree; RIPS uses Tree Walking
	// Algorithm system phases) or "hypercube" (Procs must be a power of
	// two; RIPS uses incremental Dimension Exchange system phases).
	// Every Algorithm runs on every topology.
	Topology string
	// Algorithm selects the scheduler (default RIPS).
	Algorithm Algorithm
	// Backend selects the simulator (default) or real shared-memory
	// parallel execution (flat Parallel, or the hierarchical Hybrid).
	Backend Backend
	// Domains is the Hybrid backend's affinity-domain count: how many
	// contiguous worker blocks the machine is split into for the
	// phase-across/steal-within hierarchy. Zero (the default)
	// auto-detects the host's NUMA nodes; any positive count is clamped
	// to the worker count, and on hypercube machines rounded down to a
	// power of two (the domain-level planner is the hypercube walking
	// algorithm). Hybrid backend only — Validate rejects it elsewhere.
	// The partition never changes the answer, only where work runs.
	Domains int
	// Eager switches RIPS to the two-queue eager local policy.
	Eager bool
	// All switches RIPS to the ALL global transfer policy.
	All bool
	// Periodic switches RIPS's transfer detection to the naive
	// periodic global reduction at this interval (0 = event-driven).
	Periodic Time
	// ExactHypercube upgrades hypercube machines from incremental
	// Dimension Exchange system phases to the exact Cube Walking
	// Algorithm (balance within one task, like MWA on the mesh).
	ExactHypercube bool
	// RIDUpdateFactor overrides RID's load-update factor u
	// (default 0.4, the paper's tuned value).
	RIDUpdateFactor float64
	// InitBackoff throttles the simulated ANY detector: a drained node
	// waits this much virtual time before broadcasting init, so that a
	// round's initial fan-out does not trigger a storm of nearly-empty
	// system phases. Negative disables the wait; zero means the
	// runtime default of 1ms. Simulate backend only.
	InitBackoff Time
	// DetectInterval is the real-time analogue of InitBackoff for the
	// Parallel backend: how long a drained worker waits before
	// requesting a transfer. Negative disables the wait; a positive
	// value is a constant override; zero (the default) adapts the wait
	// from observed phase yield, starting at the backend base of 100us
	// and backing off as phases move fewer tasks. Only phase timing
	// depends on this, never the answer. Parallel backend only.
	DetectInterval time.Duration
	// Timeout bounds a run's real elapsed time: when positive,
	// RunContext derives a deadline that far in the future from its
	// context, so the run cancels itself at the next phase boundary
	// once the budget expires (Result.Canceled set, the error is
	// context.DeadlineExceeded). Zero means no time bound. On the
	// Cluster backend the coordinator applies the same bound to the
	// distributed job.
	Timeout time.Duration
	// Seed makes runs reproducible; simulated runs are deterministic
	// per seed (the Parallel backend's answer is seed- and
	// timing-independent, but steal orders are not).
	Seed int64
	// OnPhase, when non-nil, receives a snapshot after every RIPS
	// system phase — the progress feed a server streams to clients.
	// The hook runs on the scheduler's critical path (the phase leader
	// with the world stopped on the Parallel backend; node 0's
	// simulated program on Simulate), so it must not block: hand the
	// value off and return. Ignored by the baseline algorithms and
	// Steal, which have no phases.
	OnPhase func(PhaseInfo)
	// Pool, when non-nil, runs Parallel-backend work on a shared
	// resident worker pool instead of spawning fresh goroutines — the
	// serving configuration, where many submissions multiplex onto one
	// set of cores. The machine must fit the pool (see Validate).
	// Ignored by the Simulate backend, which has no real workers.
	Pool *Pool
}

// Result carries the paper's measures for one run.
type Result struct {
	// Time is the parallel execution time T. Zero on the Parallel
	// backend, where the measured time is the real Wall below.
	Time Time
	// Overhead (Th) and Idle (Ti) are per-node averages. On the
	// Parallel backend they are measured in real (wall-clock)
	// nanoseconds rather than virtual time.
	Overhead, Idle Time
	// Tasks is the number of tasks generated and executed.
	Tasks int64
	// Nonlocal is how many tasks executed away from their origin.
	Nonlocal int64
	// Phases is the number of RIPS system phases (0 for baselines).
	Phases int64
	// SeqTime is the sequential execution time Ts.
	SeqTime Time
	// Efficiency is Ts/(N*T); Speedup is Ts/T. On the Parallel
	// backend, Efficiency is busy/(N*wall) and Speedup is
	// Efficiency*N (the effective parallelism).
	Efficiency, Speedup float64
	// Wall is the elapsed real time of a Parallel-backend run (zero
	// for simulated runs, whose time is the virtual Time above).
	Wall time.Duration
	// Steals counts successful steals of a Parallel Steal run, or the
	// intra-domain steals of a Hybrid run.
	Steals int64
	// Domains is the resolved affinity-domain count of a Hybrid run —
	// what Config.Domains = 0 auto-detected, or the clamped explicit
	// request. Zero on the other backends.
	Domains int
	// AppResult is the aggregated application result (e.g. solutions
	// found) for result-counting workloads.
	AppResult int64
	// Canceled reports that the run was stopped early through its
	// context. Every other field then covers only the work completed
	// before the cancellation: Tasks counts generated tasks of which
	// some were never executed, AppResult is a partial count, and the
	// derived Efficiency/Speedup are zero (they are meaningless for a
	// truncated run).
	Canceled bool
}

// machine resolves the configured interconnect.
func (c Config) machine() (topo.Topology, error) {
	switch c.Topology {
	case "", "mesh":
		if c.Rows > 0 || c.Cols > 0 {
			if c.Rows <= 0 || c.Cols <= 0 {
				return nil, fmt.Errorf("rips: Rows and Cols must both be positive")
			}
			return topo.NewMesh(c.Rows, c.Cols), nil
		}
		if c.Procs <= 0 {
			return nil, fmt.Errorf("rips: Config.Procs must be positive")
		}
		return topo.SquarishMesh(c.Procs), nil
	case "tree":
		if c.Procs <= 0 {
			return nil, fmt.Errorf("rips: Config.Procs must be positive")
		}
		return topo.NewTree(c.Procs), nil
	case "hypercube":
		if c.Procs <= 0 || c.Procs&(c.Procs-1) != 0 {
			return nil, fmt.Errorf("rips: hypercube needs a power-of-two Procs, got %d", c.Procs)
		}
		d := 0
		for 1<<d < c.Procs {
			d++
		}
		return topo.NewHypercube(d), nil
	default:
		return nil, fmt.Errorf("rips: unknown topology %q", c.Topology)
	}
}

// Nodes returns the configured machine's node count — Procs, Rows x
// Cols, or the topology's resolution of them. For a Parallel run this
// is also the number of pool workers the run occupies, which is what
// the multi-tenant admission arbiter charges a submission for.
func (c Config) Nodes() (int, error) {
	m, err := c.machine()
	if err != nil {
		return 0, err
	}
	return m.Size(), nil
}

// Validate checks the whole configuration eagerly — machine shape,
// algorithm/backend compatibility, pool capacity — and returns a
// descriptive error for the first problem found. RunContext validates
// implicitly; call Validate directly to reject a bad configuration
// (e.g. an incoming job submission) before committing resources to it.
func (c Config) Validate() error {
	machine, err := c.machine()
	if err != nil {
		return err
	}
	switch c.Backend {
	case Simulate, Parallel, Hybrid, Cluster:
	default:
		return fmt.Errorf("rips: unknown backend %v", c.Backend)
	}
	switch c.Algorithm {
	case RIPS, Random, Gradient, RID, Static, Steal:
	default:
		return fmt.Errorf("rips: unknown algorithm %v", c.Algorithm)
	}
	if c.Domains < 0 {
		return fmt.Errorf("rips: Config.Domains must be non-negative, got %d", c.Domains)
	}
	if c.Domains > 0 && c.Backend != Hybrid {
		return fmt.Errorf("rips: Config.Domains applies only to the Hybrid backend")
	}
	if c.Timeout < 0 {
		return fmt.Errorf("rips: Config.Timeout must be non-negative, got %v", c.Timeout)
	}
	switch c.Backend {
	case Parallel:
		if c.Algorithm != RIPS && c.Algorithm != Steal {
			return fmt.Errorf("rips: algorithm %v runs only on the Simulate backend", c.Algorithm)
		}
		if c.Periodic > 0 {
			return fmt.Errorf("rips: the periodic detector is not available on the Parallel backend")
		}
		if err := c.poolFits(machine); err != nil {
			return err
		}
	case Hybrid:
		if c.Algorithm != RIPS {
			return fmt.Errorf("rips: the Hybrid backend embeds its own intra-domain stealing; Algorithm must be RIPS, got %v", c.Algorithm)
		}
		if c.Periodic > 0 {
			return fmt.Errorf("rips: the periodic detector is not available on the Hybrid backend")
		}
		if err := c.poolFits(machine); err != nil {
			return err
		}
	case Cluster:
		// The cluster's per-process executor embeds the phase protocol;
		// there is no Steal or baseline variant of it, and no local pool
		// or affinity partition to configure — each dimension is a
		// different process, not a different goroutine.
		if c.Algorithm != RIPS {
			return fmt.Errorf("rips: the Cluster backend runs the phase protocol only; Algorithm must be RIPS, got %v", c.Algorithm)
		}
		if c.Periodic > 0 {
			return fmt.Errorf("rips: the periodic detector is not available on the Cluster backend")
		}
		if c.Pool != nil {
			return fmt.Errorf("rips: the Cluster backend runs on cluster nodes, not a local worker pool")
		}
	default: // Simulate
		if c.Algorithm == Steal {
			return fmt.Errorf("rips: the steal algorithm runs only on the Parallel backend")
		}
	}
	return nil
}

// poolFits checks the machine fits the configured Pool's lease, when
// one is set.
func (c Config) poolFits(machine topo.Topology) error {
	if c.Pool == nil {
		return nil
	}
	if n := machine.Size(); n > c.Pool.Workers() {
		return fmt.Errorf("rips: config needs %d workers but the pool has %d", n, c.Pool.Workers())
	}
	return nil
}

// Run executes the workload and returns the paper's metrics. The
// sequential profile is measured on the fly; use RunProfiled to reuse
// a Profile across runs.
//
// Deprecated: use RunContext, which adds cancellation. Run is
// equivalent to RunContext with a background context.
func Run(a App, cfg Config) (Result, error) {
	return RunContext(context.Background(), a, cfg) //ripslint:allow ctxflow deprecated context-free shim; a background root is its documented contract
}

// RunProfiled is Run with a pre-computed sequential profile.
//
// Deprecated: use RunProfiledContext, which adds cancellation.
func RunProfiled(a App, p Profile, cfg Config) (Result, error) {
	return RunProfiledContext(context.Background(), a, p, cfg) //ripslint:allow ctxflow deprecated context-free shim; a background root is its documented contract
}

// RunContext executes the workload and returns the paper's metrics.
// Canceling the context stops the run at its next phase boundary —
// within about one detector interval on the Parallel backend — and
// returns the context's error together with a partial Result whose
// Canceled flag is set. The sequential profile is measured on the fly;
// use RunProfiledContext to reuse a Profile across runs.
func RunContext(ctx context.Context, a App, cfg Config) (Result, error) {
	p := app.Measure(a)
	return RunProfiledContext(ctx, a, p, cfg)
}

// RunProfiledContext is RunContext with a pre-computed sequential
// profile.
func RunProfiledContext(ctx context.Context, a App, p Profile, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Backend == Cluster {
		return Result{}, fmt.Errorf("rips: the Cluster backend runs through a cluster node, not in-process; submit the job to a ripsd started with -cluster (internal/cluster executes it)")
	}
	mesh, err := cfg.machine()
	if err != nil {
		return Result{}, err
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	var out Result
	out.SeqTime = p.Work
	if cfg.Backend == Parallel || cfg.Backend == Hybrid {
		return runParallel(ctx, a, p, cfg, mesh)
	}
	switch cfg.Algorithm {
	case RIPS:
		rc := ripsrt.Config{Topo: mesh, App: a, Seed: cfg.Seed, InitBackoff: cfg.InitBackoff,
			Cancel: ctx.Done(), OnPhase: cfg.OnPhase}
		if cfg.Eager {
			rc.Local = ripsrt.Eager
		}
		if cfg.All {
			rc.Global = ripsrt.All
		}
		if cfg.Periodic > 0 {
			rc.Detector = ripsrt.Periodic
			rc.Period = cfg.Periodic
		}
		rc.ExactCube = cfg.ExactHypercube
		res, err := ripsrt.Run(rc)
		if err != nil && !res.Canceled {
			return Result{}, err
		}
		out.Time = res.Time
		out.Overhead = res.Overhead
		out.Idle = res.Idle
		out.Tasks = res.Generated
		out.Nonlocal = res.Nonlocal
		out.Phases = res.Phases
		out.AppResult = res.AppResult
		if res.Canceled {
			out.Canceled = true
			return out, ctxErr(ctx, err)
		}
	case Random, Gradient, RID, Static:
		dc := dynsched.Config{Topo: mesh, App: a, Seed: cfg.Seed, Cancel: ctx.Done()}
		switch cfg.Algorithm {
		case Random:
			dc.Strategy = dynsched.NewRandom()
		case Gradient:
			dc.Strategy = dynsched.NewGradient()
		case Static:
			dc.Strategy = dynsched.NewStatic()
		default:
			params := dynsched.DefaultRIDParams()
			if cfg.RIDUpdateFactor > 0 {
				params.U = cfg.RIDUpdateFactor
			}
			dc.Strategy = dynsched.NewRID(params)
		}
		res, err := dynsched.Run(dc)
		if err != nil && !res.Canceled {
			return Result{}, err
		}
		out.Time = res.Time
		out.Overhead = res.Overhead
		out.Idle = res.Idle
		out.Tasks = res.Generated
		out.Nonlocal = res.Nonlocal
	default:
		return Result{}, fmt.Errorf("rips: unknown algorithm %v", cfg.Algorithm)
	}
	out.Efficiency = metrics.Efficiency(p.Work, mesh.Size(), out.Time)
	out.Speedup = metrics.Speedup(p.Work, out.Time)
	return out, nil
}

// ctxErr prefers the context's own error (context.Canceled or
// DeadlineExceeded — what callers select on) over the backend's
// internal cancellation sentinel.
func ctxErr(ctx context.Context, fallback error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return fallback
}

// runParallel dispatches a run to the real shared-memory backends
// (Parallel and Hybrid) — fresh goroutines, or the configured Pool's
// resident workers.
func runParallel(ctx context.Context, a App, p Profile, cfg Config, machine topo.Topology) (Result, error) {
	pc := par.Config{
		Topo:           machine,
		App:            a,
		DetectInterval: cfg.DetectInterval,
		Seed:           cfg.Seed,
		Cancel:         ctx.Done(),
		OnPhase:        cfg.OnPhase,
	}
	if cfg.Backend == Hybrid {
		pc.Strategy = par.Hybrid
		pc.Domains = cfg.Domains
	}
	switch cfg.Algorithm {
	case RIPS:
		if cfg.Eager {
			pc.Local = ripsrt.Eager
		}
		if cfg.All {
			pc.Global = ripsrt.All
		}
	case Steal:
		pc.Strategy = par.Steal
	default:
		return Result{}, fmt.Errorf("rips: algorithm %v runs only on the Simulate backend", cfg.Algorithm)
	}
	var res par.Result
	var err error
	if cfg.Pool != nil {
		res, err = cfg.Pool.p.Run(pc)
	} else {
		res, err = par.Run(pc)
	}
	if err != nil && !res.Canceled {
		return Result{}, err
	}
	out := Result{
		Overhead:  Time(res.Overhead),
		Idle:      Time(res.Idle),
		Tasks:     res.Generated,
		Nonlocal:  res.Nonlocal,
		Phases:    res.Phases,
		SeqTime:   p.Work,
		Wall:      res.Wall,
		Steals:    res.Steals,
		Domains:   res.Domains,
		AppResult: res.AppResult,
	}
	if res.Canceled {
		out.Canceled = true
		return out, ctxErr(ctx, err)
	}
	eff := metrics.WallEfficiency(res.Busy, res.Workers, res.Wall)
	out.Efficiency = eff
	out.Speedup = eff * float64(res.Workers)
	return out, nil
}

// NQueens returns the paper's exhaustive N-Queens search workload
// (counting all solutions of the n-queens problem), decomposed at the
// paper's granularity.
func NQueens(n int) App { return nqueens.New(n, 4) }

// Puzzle15 returns one of the paper's three IDA* 15-puzzle
// configurations (1, 2 or 3).
func Puzzle15(config int) App {
	cfgs := puzzle.Configs()
	if config < 1 || config > len(cfgs) {
		panic(fmt.Sprintf("rips: Puzzle15 config %d out of range 1..%d", config, len(cfgs)))
	}
	return cfgs[config-1]
}

// MolecularDynamics returns the GROMOS surrogate workload with the
// given cutoff radius in Angstrom (the paper uses 8, 12 and 16).
func MolecularDynamics(cutoffA float64) App { return gromos.New(cutoffA) }
