package rips

import (
	"fmt"
	"time"
)

// Option is one functional configuration step for NewConfig. Options
// validate their own argument eagerly — a bad value errors at
// construction with a message naming the option, instead of surfacing
// later as a panic or an opaque run failure.
type Option func(*Config) error

// NewConfig assembles a Config from options and validates the result
// as a whole (machine shape, algorithm/backend compatibility, pool
// capacity), so a returned Config is known runnable up to workload
// semantics.
//
//	cfg, err := rips.NewConfig(
//		rips.WithWorkers(8),
//		rips.WithBackend(rips.Parallel),
//		rips.WithAlgorithm(rips.RIPS),
//	)
func NewConfig(opts ...Option) (Config, error) {
	var cfg Config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return Config{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// WithWorkers sets the machine size (Config.Procs): simulated nodes on
// the Simulate backend, real worker goroutines on Parallel.
func WithWorkers(n int) Option {
	return func(c *Config) error {
		if n < 1 {
			return fmt.Errorf("rips: WithWorkers(%d): need at least one worker", n)
		}
		c.Procs = n
		return nil
	}
}

// WithMesh sets an explicit mesh shape instead of the squarish default.
func WithMesh(rows, cols int) Option {
	return func(c *Config) error {
		if rows < 1 || cols < 1 {
			return fmt.Errorf("rips: WithMesh(%d, %d): both sides must be positive", rows, cols)
		}
		c.Rows, c.Cols = rows, cols
		return nil
	}
}

// WithTopology selects the interconnect: "mesh", "tree" or
// "hypercube" (or "" for the mesh default).
func WithTopology(name string) Option {
	return func(c *Config) error {
		switch name {
		case "", "mesh", "tree", "hypercube":
			c.Topology = name
			return nil
		}
		return fmt.Errorf("rips: WithTopology(%q): unknown topology (want mesh, tree or hypercube)", name)
	}
}

// WithAlgorithm selects the scheduler.
func WithAlgorithm(a Algorithm) Option {
	return func(c *Config) error {
		switch a {
		case RIPS, Random, Gradient, RID, Static, Steal:
			c.Algorithm = a
			return nil
		}
		return fmt.Errorf("rips: WithAlgorithm(%v): unknown algorithm", a)
	}
}

// WithBackend selects the execution substrate. Cross-checks against
// the algorithm (e.g. Steal requires Parallel) run in NewConfig's
// final Validate, since options apply in any order.
func WithBackend(b Backend) Option {
	return func(c *Config) error {
		switch b {
		case Simulate, Parallel, Hybrid, Cluster:
			c.Backend = b
			return nil
		}
		return fmt.Errorf("rips: WithBackend(%v): unknown backend", b)
	}
}

// WithDomains sets the Hybrid backend's affinity-domain count: zero
// (the default) auto-detects the host's NUMA nodes, any positive count
// is clamped to the worker count (see Config.Domains). NewConfig's
// final Validate rejects the option on other backends.
func WithDomains(n int) Option {
	return func(c *Config) error {
		if n < 0 {
			return fmt.Errorf("rips: WithDomains(%d): count must be non-negative", n)
		}
		c.Domains = n
		return nil
	}
}

// WithEager switches RIPS to the two-queue eager local policy.
func WithEager() Option {
	return func(c *Config) error {
		c.Eager = true
		return nil
	}
}

// WithAll switches RIPS to the ALL global transfer policy.
func WithAll() Option {
	return func(c *Config) error {
		c.All = true
		return nil
	}
}

// WithPeriodic switches RIPS transfer detection to the naive periodic
// reduction at the given virtual-time interval (Simulate backend only;
// NewConfig's Validate rejects it on Parallel).
func WithPeriodic(interval Time) Option {
	return func(c *Config) error {
		if interval <= 0 {
			return fmt.Errorf("rips: WithPeriodic(%v): interval must be positive", interval)
		}
		c.Periodic = interval
		return nil
	}
}

// WithExactHypercube upgrades hypercube system phases from incremental
// Dimension Exchange to the exact Cube Walking Algorithm.
func WithExactHypercube() Option {
	return func(c *Config) error {
		c.ExactHypercube = true
		return nil
	}
}

// WithRIDUpdateFactor overrides RID's load-update factor u.
func WithRIDUpdateFactor(u float64) Option {
	return func(c *Config) error {
		if u <= 0 || u > 1 {
			return fmt.Errorf("rips: WithRIDUpdateFactor(%v): factor must be in (0, 1]", u)
		}
		c.RIDUpdateFactor = u
		return nil
	}
}

// WithInitBackoff sets the simulated ANY detector's initiation delay
// (negative disables the wait; see Config.InitBackoff).
func WithInitBackoff(d Time) Option {
	return func(c *Config) error {
		c.InitBackoff = d
		return nil
	}
}

// WithDetectInterval sets the Parallel backend's detector wait
// (negative disables, zero adapts; see Config.DetectInterval).
func WithDetectInterval(d time.Duration) Option {
	return func(c *Config) error {
		c.DetectInterval = d
		return nil
	}
}

// WithTimeout bounds the run's real elapsed time (see Config.Timeout):
// the run cancels itself at the next phase boundary once the budget
// expires. The duration must be positive — omit the option for an
// unbounded run.
func WithTimeout(d time.Duration) Option {
	return func(c *Config) error {
		if d <= 0 {
			return fmt.Errorf("rips: WithTimeout(%v): duration must be positive (omit the option for no bound)", d)
		}
		c.Timeout = d
		return nil
	}
}

// WithSeed sets the reproducibility seed.
func WithSeed(seed int64) Option {
	return func(c *Config) error {
		c.Seed = seed
		return nil
	}
}

// WithOnPhase installs the per-system-phase progress hook (see
// Config.OnPhase for the non-blocking contract).
func WithOnPhase(fn func(PhaseInfo)) Option {
	return func(c *Config) error {
		if fn == nil {
			return fmt.Errorf("rips: WithOnPhase(nil): hook must not be nil (omit the option instead)")
		}
		c.OnPhase = fn
		return nil
	}
}

// WithPool runs Parallel-backend work on a shared resident pool; the
// machine must fit it (checked by NewConfig's Validate).
func WithPool(p *Pool) Option {
	return func(c *Config) error {
		if p == nil {
			return fmt.Errorf("rips: WithPool(nil): pool must not be nil (omit the option instead)")
		}
		c.Pool = p
		return nil
	}
}
