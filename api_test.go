package rips_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"rips"
)

// TestEnumRoundTrip is the property test for the satellite bugfix:
// parse(String(x)) == x for every defined Algorithm and Backend
// constant, and the String() rendering of out-of-range values is
// rejected by the parsers instead of aliasing onto a constant (the old
// fallthrough behavior mapped every unknown Backend to "simulate").
func TestEnumRoundTrip(t *testing.T) {
	for _, a := range rips.Algorithms() {
		got, err := rips.ParseAlgorithm(a.String())
		if err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", a.String(), err)
		}
		if got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, want %v", a.String(), got, a)
		}
	}
	for _, b := range rips.Backends() {
		got, err := rips.ParseBackend(b.String())
		if err != nil {
			t.Errorf("ParseBackend(%q): %v", b.String(), err)
		}
		if got != b {
			t.Errorf("ParseBackend(%q) = %v, want %v", b.String(), got, b)
		}
	}
	// Out-of-range values render distinctly and do not parse.
	for bad := -3; bad <= 10; bad++ {
		a := rips.Algorithm(bad)
		if isDefined(a) {
			continue
		}
		s := a.String()
		if !strings.Contains(s, "algorithm(") {
			t.Errorf("Algorithm(%d).String() = %q, want algorithm(N) form", bad, s)
		}
		if _, err := rips.ParseAlgorithm(s); err == nil {
			t.Errorf("ParseAlgorithm(%q) accepted an out-of-range value", s)
		}
	}
	for bad := -3; bad <= 10; bad++ {
		b := rips.Backend(bad)
		if isDefinedBackend(b) {
			continue
		}
		s := b.String()
		if !strings.Contains(s, "backend(") {
			t.Errorf("Backend(%d).String() = %q, want backend(N) form", bad, s)
		}
		if _, err := rips.ParseBackend(s); err == nil {
			t.Errorf("ParseBackend(%q) accepted an out-of-range value", s)
		}
	}
}

func isDefined(a rips.Algorithm) bool {
	for _, d := range rips.Algorithms() {
		if a == d {
			return true
		}
	}
	return false
}

func isDefinedBackend(b rips.Backend) bool {
	for _, d := range rips.Backends() {
		if b == d {
			return true
		}
	}
	return false
}

// TestNewConfigOptions covers the functional-options constructor: a
// valid assembly, per-option eager validation, and the cross-field
// checks (Steal on Simulate) that only the final Validate can see.
func TestNewConfigOptions(t *testing.T) {
	cfg, err := rips.NewConfig(
		rips.WithWorkers(8),
		rips.WithBackend(rips.Parallel),
		rips.WithAlgorithm(rips.RIPS),
		rips.WithEager(),
		rips.WithSeed(7),
		rips.WithDetectInterval(time.Millisecond),
	)
	if err != nil {
		t.Fatalf("NewConfig: %v", err)
	}
	if cfg.Procs != 8 || cfg.Backend != rips.Parallel || !cfg.Eager || cfg.Seed != 7 {
		t.Errorf("NewConfig assembled %+v", cfg)
	}
	hcfg, err := rips.NewConfig(
		rips.WithWorkers(4),
		rips.WithBackend(rips.Hybrid),
		rips.WithDomains(2),
	)
	if err != nil {
		t.Fatalf("NewConfig(hybrid): %v", err)
	}
	if hcfg.Backend != rips.Hybrid || hcfg.Domains != 2 {
		t.Errorf("NewConfig assembled hybrid %+v", hcfg)
	}

	for _, tc := range []struct {
		name string
		opts []rips.Option
		want string
	}{
		{"zero workers", []rips.Option{rips.WithWorkers(0)}, "at least one worker"},
		{"bad topology", []rips.Option{rips.WithTopology("torus")}, "unknown topology"},
		{"bad algorithm", []rips.Option{rips.WithAlgorithm(rips.Algorithm(99))}, "unknown algorithm"},
		{"bad backend", []rips.Option{rips.WithBackend(rips.Backend(99))}, "unknown backend"},
		{"bad mesh", []rips.Option{rips.WithMesh(0, 4)}, "must be positive"},
		{"bad periodic", []rips.Option{rips.WithPeriodic(-1)}, "must be positive"},
		{"bad rid factor", []rips.Option{rips.WithRIDUpdateFactor(2)}, "factor must be in"},
		{"nil hook", []rips.Option{rips.WithOnPhase(nil)}, "must not be nil"},
		{"nil pool", []rips.Option{rips.WithPool(nil)}, "must not be nil"},
		{
			"steal on simulate",
			[]rips.Option{rips.WithWorkers(4), rips.WithAlgorithm(rips.Steal)},
			"steal algorithm runs only on the Parallel backend",
		},
		{
			"gradient on parallel",
			[]rips.Option{rips.WithWorkers(4), rips.WithBackend(rips.Parallel), rips.WithAlgorithm(rips.Gradient)},
			"runs only on the Simulate backend",
		},
		{
			"periodic on parallel",
			[]rips.Option{rips.WithWorkers(4), rips.WithBackend(rips.Parallel), rips.WithPeriodic(rips.Millisecond)},
			"periodic detector is not available",
		},
		{
			"hypercube size",
			[]rips.Option{rips.WithWorkers(6), rips.WithTopology("hypercube")},
			"power-of-two",
		},
		{"bad domains", []rips.Option{rips.WithDomains(-1)}, "non-negative"},
		{
			"domains on parallel",
			[]rips.Option{rips.WithWorkers(4), rips.WithBackend(rips.Parallel), rips.WithDomains(2)},
			"only to the Hybrid backend",
		},
		{
			"steal on hybrid",
			[]rips.Option{rips.WithWorkers(4), rips.WithBackend(rips.Hybrid), rips.WithAlgorithm(rips.Steal)},
			"must be RIPS",
		},
		{
			"periodic on hybrid",
			[]rips.Option{rips.WithWorkers(4), rips.WithBackend(rips.Hybrid), rips.WithPeriodic(rips.Millisecond)},
			"periodic detector is not available",
		},
	} {
		_, err := rips.NewConfig(tc.opts...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestResultJSONRoundTrip checks Encode/Decode is lossless through an
// actual JSON marshal, and that the schema field gates decoding.
func TestResultJSONRoundTrip(t *testing.T) {
	cfg := rips.Config{
		Procs:          16,
		Topology:       "tree",
		Algorithm:      rips.Steal,
		Backend:        rips.Parallel,
		Eager:          true,
		DetectInterval: 3 * time.Millisecond,
		Seed:           42,
	}
	res := rips.Result{
		Time:       rips.Millisecond,
		Overhead:   7,
		Idle:       9,
		Tasks:      1234,
		Nonlocal:   55,
		Phases:     17,
		SeqTime:    2 * rips.Millisecond,
		Efficiency: 0.5,
		Speedup:    8,
		Wall:       time.Second,
		Steals:     99,
		AppResult:  14200,
		Canceled:   true,
	}
	doc := rips.EncodeResult(cfg, res)
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back rips.ResultJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	gotCfg, gotRes, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCfg, cfg) {
		t.Errorf("config round-trip:\n got %+v\nwant %+v", gotCfg, cfg)
	}
	if gotRes != res {
		t.Errorf("result round-trip:\n got %+v\nwant %+v", gotRes, res)
	}

	doc.Schema = "rips-result/v0"
	if _, _, err := doc.Decode(); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("Decode accepted schema %q: %v", doc.Schema, err)
	}

	// A sparse submission decodes to defaults.
	var sparse rips.ConfigJSON
	if err := json.Unmarshal([]byte(`{"procs": 4}`), &sparse); err != nil {
		t.Fatal(err)
	}
	c, err := sparse.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if c.Algorithm != rips.RIPS || c.Backend != rips.Simulate || c.Procs != 4 {
		t.Errorf("sparse decode = %+v", c)
	}

	if _, err := (rips.ConfigJSON{Algorithm: "magic"}).Decode(); err == nil {
		t.Error("Decode accepted algorithm \"magic\"")
	}

	// The hybrid fields ride the same document.
	hdoc := rips.EncodeResult(
		rips.Config{Procs: 8, Backend: rips.Hybrid, Domains: 2},
		rips.Result{Domains: 2, Steals: 5, Tasks: 10},
	)
	hcfg, hres, err := hdoc.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if hcfg.Backend != rips.Hybrid || hcfg.Domains != 2 || hres.Domains != 2 {
		t.Errorf("hybrid round-trip: cfg %+v res %+v", hcfg, hres)
	}
}

// TestRunContextCancelSimulate cancels a simulated run up front and
// checks the partial-result contract surfaces context.Canceled.
func TestRunContextCancelSimulate(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := rips.RunContext(ctx, rips.NQueens(10), rips.Config{Procs: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !res.Canceled {
		t.Error("Result.Canceled = false")
	}
	if res.Efficiency != 0 || res.Speedup != 0 {
		t.Errorf("canceled run reported Efficiency=%v Speedup=%v, want 0", res.Efficiency, res.Speedup)
	}
}

// TestRunContextCancelParallel cancels a Parallel-backend run mid-
// flight and checks it stops promptly with a partial result.
func TestRunContextCancelParallel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := rips.RunContext(ctx, rips.NQueens(13), rips.Config{Procs: 4, Backend: rips.Parallel})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !res.Canceled {
		t.Error("Result.Canceled = false")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled run took %v", elapsed)
	}
}

// TestRunContextCompletes checks an uncanceled context changes nothing
// and Run remains a working wrapper.
func TestRunContextCompletes(t *testing.T) {
	res, err := rips.RunContext(context.Background(), rips.NQueens(8), rips.Config{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Canceled || res.AppResult != 92 {
		t.Errorf("Canceled=%v AppResult=%d, want false/92", res.Canceled, res.AppResult)
	}
	legacy, err := rips.Run(rips.NQueens(8), rips.Config{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if legacy != res {
		t.Errorf("Run and RunContext disagree:\n got %+v\nwant %+v", legacy, res)
	}
}

// TestOnPhaseParallelBackend checks the public OnPhase hook fires on
// the Parallel backend with monotonically increasing phase indices.
func TestOnPhaseParallelBackend(t *testing.T) {
	pool, err := rips.NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// The hook runs on one leader at a time, ordered by the epoch
	// barrier, so a plain append is safe even under -race.
	var phases []int64
	res, err := rips.RunContext(context.Background(), rips.NQueens(10), rips.Config{
		Procs:   4,
		Backend: rips.Parallel,
		Pool:    pool,
		OnPhase: func(pi rips.PhaseInfo) {
			phases = append(phases, pi.Phase)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(phases)) != res.Phases {
		t.Fatalf("OnPhase fired %d times for %d phases", len(phases), res.Phases)
	}
	for i, p := range phases {
		if p != int64(i+1) {
			t.Errorf("phase %d reported index %d", i+1, p)
		}
	}
}

// TestPriorityRoundTrip extends the enum property test to the serving
// Priority vocabulary: parse(String(x)) == x for every defined lane,
// "" defaults to PriorityNormal, and out-of-range renderings are
// rejected.
func TestPriorityRoundTrip(t *testing.T) {
	for _, p := range rips.Priorities() {
		got, err := rips.ParsePriority(p.String())
		if err != nil {
			t.Errorf("ParsePriority(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("ParsePriority(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if got, err := rips.ParsePriority(""); err != nil || got != rips.PriorityNormal {
		t.Errorf("ParsePriority(\"\") = %v, %v; want PriorityNormal", got, err)
	}
	if rips.PriorityLow >= rips.PriorityNormal || rips.PriorityNormal >= rips.PriorityHigh {
		t.Error("priorities do not order numerically low < normal < high")
	}
	for bad := -3; bad <= 10; bad++ {
		p := rips.Priority(bad)
		defined := false
		for _, d := range rips.Priorities() {
			if p == d {
				defined = true
			}
		}
		if defined {
			continue
		}
		s := p.String()
		if !strings.Contains(s, "priority(") {
			t.Errorf("Priority(%d).String() = %q, want priority(N) form", bad, s)
		}
		if _, err := rips.ParsePriority(s); err == nil {
			t.Errorf("ParsePriority(%q) accepted an out-of-range value", s)
		}
	}
}

// TestParseNormalization pins the shared lenience policy of the three
// enum parsers: mixed case and surrounding whitespace are normalized
// once, identically, so parse(decorate(String(x))) == x for every
// defined constant and every decoration — the parsers must not each
// invent their own tolerance. Interior whitespace is still an error,
// and whitespace-only priority input falls to the PriorityNormal
// default exactly like "".
func TestParseNormalization(t *testing.T) {
	capitalize := func(s string) string {
		if s == "" {
			return s
		}
		return strings.ToUpper(s[:1]) + s[1:]
	}
	decorations := []func(string) string{
		strings.ToUpper,
		capitalize,
		func(s string) string { return "  " + s },
		func(s string) string { return s + "\t" },
		func(s string) string { return " \n" + strings.ToUpper(s) + " " },
	}
	for _, a := range rips.Algorithms() {
		for _, dec := range decorations {
			in := dec(a.String())
			got, err := rips.ParseAlgorithm(in)
			if err != nil || got != a {
				t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", in, got, err, a)
			}
		}
	}
	for _, b := range rips.Backends() {
		for _, dec := range decorations {
			in := dec(b.String())
			got, err := rips.ParseBackend(in)
			if err != nil || got != b {
				t.Errorf("ParseBackend(%q) = %v, %v; want %v", in, got, err, b)
			}
		}
	}
	for _, p := range rips.Priorities() {
		for _, dec := range decorations {
			in := dec(p.String())
			got, err := rips.ParsePriority(in)
			if err != nil || got != p {
				t.Errorf("ParsePriority(%q) = %v, %v; want %v", in, got, err, p)
			}
		}
	}
	if got, err := rips.ParsePriority(" \t\n"); err != nil || got != rips.PriorityNormal {
		t.Errorf("ParsePriority(whitespace) = %v, %v; want PriorityNormal", got, err)
	}
	// Normalization trims edges only: interior whitespace, partial
	// names and decorated garbage still fail.
	for _, bad := range []string{"r ips", "si mulate", "hi gh", "ripsx", "PARALLELISM"} {
		if _, err := rips.ParseAlgorithm(bad); err == nil && bad != "PARALLELISM" {
			t.Errorf("ParseAlgorithm(%q) unexpectedly parsed", bad)
		}
		if _, err := rips.ParseBackend(bad); err == nil {
			t.Errorf("ParseBackend(%q) unexpectedly parsed", bad)
		}
		if _, err := rips.ParsePriority(bad); err == nil {
			t.Errorf("ParsePriority(%q) unexpectedly parsed", bad)
		}
	}
}

// TestConfigJSONCanonical checks the cache-key encoding: identical
// resolved configs give byte-identical keys, any field difference
// changes the key, and zero fields do not appear (so a default spelled
// out and a default omitted agree after resolution).
func TestConfigJSONCanonical(t *testing.T) {
	base := rips.EncodeConfig(rips.Config{Procs: 4, Backend: rips.Parallel, Seed: 7})
	if got, want := base.Canonical(), base.Canonical(); got != want {
		t.Fatalf("Canonical not deterministic: %q vs %q", got, want)
	}
	variants := []rips.ConfigJSON{
		rips.EncodeConfig(rips.Config{Procs: 8, Backend: rips.Parallel, Seed: 7}),
		rips.EncodeConfig(rips.Config{Procs: 4, Backend: rips.Parallel, Seed: 8}),
		rips.EncodeConfig(rips.Config{Procs: 4, Backend: rips.Parallel, Seed: 7, Eager: true}),
		rips.EncodeConfig(rips.Config{Procs: 4, Backend: rips.Parallel, Seed: 7, Topology: "tree"}),
		rips.EncodeConfig(rips.Config{Procs: 4, Seed: 7}),
		rips.EncodeConfig(rips.Config{Procs: 4, Backend: rips.Hybrid, Seed: 7}),
		rips.EncodeConfig(rips.Config{Procs: 4, Backend: rips.Hybrid, Seed: 7, Domains: 2}),
	}
	seen := map[string]bool{base.Canonical(): true}
	for i, v := range variants {
		k := v.Canonical()
		if seen[k] {
			t.Errorf("variant %d collides with an earlier key: %q", i, k)
		}
		seen[k] = true
	}
	// The encoding inherits rips-result/v1's omitempty convention, so a
	// zero Rows/Cols never appears and cannot split the cache.
	if k := base.Canonical(); strings.Contains(k, "rows") || strings.Contains(k, "cols") {
		t.Errorf("canonical key carries zero-valued fields: %q", k)
	}
}

// TestPublicSubPools drives Split/Resize/Release through the public
// API: two leases run concurrently submitted jobs with correct
// answers, and Validate enforces the lease size, not the root's.
func TestPublicSubPools(t *testing.T) {
	pool, err := rips.NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	a, err := pool.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	if free := pool.Free(); free != 0 {
		t.Errorf("Free() with both leases out = %d, want 0", free)
	}

	cfgFor := func(p *rips.Pool) rips.Config {
		return rips.Config{Procs: 2, Backend: rips.Parallel, Pool: p}
	}
	// A machine that fits the root but not the lease is rejected.
	big := rips.Config{Procs: 4, Backend: rips.Parallel, Pool: a}
	if err := big.Validate(); err == nil || !strings.Contains(err.Error(), "pool has 2") {
		t.Errorf("oversized lease config Validate = %v, want capacity error", err)
	}

	var wg sync.WaitGroup
	for _, sub := range []*rips.Pool{a, b} {
		wg.Add(1)
		go func(sub *rips.Pool) {
			defer wg.Done()
			res, err := rips.RunContext(context.Background(), rips.NQueens(8), cfgFor(sub))
			if err != nil {
				t.Errorf("lease run: %v", err)
				return
			}
			if res.AppResult != 92 {
				t.Errorf("lease run AppResult = %d, want 92", res.AppResult)
			}
		}(sub)
	}
	wg.Wait()

	a.Release()
	if err := b.Resize(4); err != nil {
		t.Fatalf("Resize(4) after release: %v", err)
	}
	res, err := rips.RunContext(context.Background(), rips.NQueens(8), rips.Config{Procs: 4, Backend: rips.Parallel, Pool: b})
	if err != nil {
		t.Fatal(err)
	}
	if res.AppResult != 92 {
		t.Errorf("resized lease AppResult = %d, want 92", res.AppResult)
	}
	b.Release()
	if free := pool.Free(); free != 4 {
		t.Errorf("Free() after releasing both leases = %d, want 4", free)
	}
}
