package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"rips/internal/difftest"
	"rips/internal/perfreg"
)

// latticeCmd is the lattice-guided performance-regression harness (see
// internal/perfreg). Default mode re-measures every probe point
// recorded in the committed baseline and compares: deterministic
// simulator metrics must match bit-for-bit (drift fails the command
// with a minimal reproducer), real-parallel metrics warn beyond noise
// thresholds. -update regenerates the baseline from a fresh sample;
// -config measures one point verbatim.
func latticeCmd(args []string) error {
	fs := flag.NewFlagSet("lattice", flag.ExitOnError)
	n := fs.Int("n", 24, "probe points to sample when regenerating with -update")
	lseed := fs.Int64("seed", 1, "master seed naming the -update sample")
	smoke := fs.Bool("smoke", false, "cheap-apps-only grid; in compare mode asserts the baseline is a smoke baseline (the CI gate)")
	baseline := fs.String("baseline", "BENCH_lattice.json", "baseline artifact to compare against, or to write with -update")
	update := fs.Bool("update", false, "regenerate the baseline from a fresh (-n, -seed) sample instead of comparing")
	jsonPath := fs.String("json", "", "also write the fresh measurement document to this path")
	one := fs.String("config", "", "measure one configuration verbatim and print its metrics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h := difftest.NewHarness()
	defer h.Close()

	if *one != "" {
		return latticeOne(h, *one, *baseline)
	}

	if *update {
		cfgs := difftest.Sample(*n, *lseed, *smoke)
		fmt.Fprintf(os.Stderr, "ripsbench: lattice measuring %d probe points (seed %d, smoke %v) on %d cores\n",
			len(cfgs), *lseed, *smoke, runtime.NumCPU())
		doc, err := perfreg.Measure(h, cfgs, *lseed, *smoke, os.Stderr)
		if err != nil {
			return err
		}
		if err := perfreg.WriteFile(*baseline, doc); err != nil {
			return err
		}
		fmt.Printf("lattice: wrote %s (%d probe points)\n", *baseline, len(doc.Entries))
		return nil
	}

	base, err := perfreg.ReadFile(*baseline)
	if err != nil {
		return fmt.Errorf("lattice: no usable baseline (regenerate with -update): %w", err)
	}
	if *smoke && !base.Smoke {
		return fmt.Errorf("lattice: -smoke compare against a full-lattice baseline %s; CI gates on the smoke grid", *baseline)
	}
	cfgs, err := base.Configs()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ripsbench: lattice re-measuring %d baseline probe points on %d cores\n",
		len(cfgs), runtime.NumCPU())
	cur, err := perfreg.Measure(h, cfgs, base.Seed, base.Smoke, os.Stderr)
	if err != nil {
		return err
	}
	if *jsonPath != "" {
		if err := perfreg.WriteFile(*jsonPath, cur); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ripsbench: wrote %s\n", *jsonPath)
	}
	rep := perfreg.Compare(base, cur, perfreg.Options{})
	rep.Print(os.Stdout)
	if !rep.Failed() {
		return nil
	}
	if min, ok := perfreg.MinimalRepro(rep); ok {
		fmt.Printf("minimal repro: ripsbench lattice -config %q\n", min.String())
	}
	return fmt.Errorf("lattice: %d exact drifts, %d missing probe points against %s",
		len(rep.Exact), len(rep.Missing), *baseline)
}

// latticeOne measures a single probe point and prints its metrics; if
// the baseline holds that point, the exact metrics are also compared.
func latticeOne(h *difftest.Harness, config, baseline string) error {
	cfg, err := difftest.Parse(config)
	if err != nil {
		return err
	}
	e, err := perfreg.MeasureEntry(h, cfg)
	if err != nil {
		return err
	}
	printMetrics := func(label string, m map[string]int64) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("%s:\n", label)
		for _, k := range keys {
			fmt.Printf("  %-24s %d\n", k, m[k])
		}
	}
	fmt.Printf("lattice point [%s]\n", e.Config)
	printMetrics("exact (deterministic)", e.Exact)
	printMetrics("advisory (this machine)", e.Advisory)

	base, err := perfreg.ReadFile(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ripsbench: no baseline to compare against (%v)\n", err)
		return nil
	}
	for _, be := range base.Entries {
		if be.Config != e.Config {
			continue
		}
		rep := perfreg.Compare(
			&perfreg.Document{Schema: perfreg.Schema, Entries: []perfreg.Entry{be}},
			&perfreg.Document{Schema: perfreg.Schema, Entries: []perfreg.Entry{e}},
			perfreg.Options{})
		rep.Print(os.Stdout)
		if rep.Failed() {
			return fmt.Errorf("lattice: exact metrics drifted from baseline %s", baseline)
		}
		return nil
	}
	fmt.Printf("(configuration not in baseline %s)\n", baseline)
	return nil
}
