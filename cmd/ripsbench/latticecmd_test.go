package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rips/internal/perfreg"
)

// captureStdout runs f with os.Stdout redirected and returns what it
// printed — latticeCmd reports to stdout like every ripsbench
// experiment, and the test asserts on the human-facing output (the
// minimal-repro line is part of the command's contract).
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := f()
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// TestLatticeCmdGatesOnDrift is the acceptance path of the perf
// harness end to end through the CLI: -update writes a baseline, a
// clean compare passes, and a baseline with a perturbed exact counter
// makes the compare exit non-zero and print a reproducer in the
// `ripsbench lattice -config "..."` form.
func TestLatticeCmdGatesOnDrift(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "BENCH_lattice.json")

	if _, err := captureStdout(t, func() error {
		return latticeCmd([]string{"-update", "-smoke", "-n", "2", "-seed", "1", "-baseline", baseline})
	}); err != nil {
		t.Fatalf("lattice -update: %v", err)
	}

	if out, err := captureStdout(t, func() error {
		return latticeCmd([]string{"-smoke", "-baseline", baseline})
	}); err != nil {
		t.Fatalf("clean compare failed: %v\n%s", err, out)
	}

	// Inject drift into one deterministic counter of the committed
	// baseline — the stand-in for a behavioral change in the scheduler.
	doc, err := perfreg.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	doc.Entries[0].Exact[perfreg.ExactMigrated] += 7
	if err := perfreg.WriteFile(baseline, doc); err != nil {
		t.Fatal(err)
	}

	out, err := captureStdout(t, func() error {
		return latticeCmd([]string{"-smoke", "-baseline", baseline})
	})
	if err == nil {
		t.Fatalf("compare against a drifted baseline succeeded; output:\n%s", out)
	}
	if !strings.Contains(out, "EXACT drift") {
		t.Errorf("output does not report the exact drift:\n%s", out)
	}
	if !strings.Contains(out, `minimal repro: ripsbench lattice -config "`) {
		t.Errorf("output has no minimal reproducer line:\n%s", out)
	}
	if !strings.Contains(out, doc.Entries[0].Config) {
		t.Errorf("reproducer/drift output never names the drifted config %q:\n%s", doc.Entries[0].Config, out)
	}
}
