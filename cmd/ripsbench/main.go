// Command ripsbench regenerates the paper's evaluation: Figure 4
// (MWA vs optimal communication cost), Table I (scheduler comparison
// on 32 processors), Table II (optimal efficiencies), Figure 5
// (normalized quality factors), Table III (speedups on 64 and 128
// processors), the transfer-policy ablation, and the Section 4
// narrative detail for 15-Queens.
//
// Usage:
//
//	ripsbench [-quick] [-seed N] [-cases N] <experiment>
//
// where experiment is one of: fig4, table1, table2, fig5, table3,
// ablation, detail, all. -quick substitutes reduced workloads and
// machine sizes so everything completes in seconds.
//
// The parscale experiment is different in kind: it runs the workload
// for real on the shared-memory parallel backend (internal/par) and
// reports the wall-clock scaling curve, RIPS next to Chase-Lev work
// stealing. It takes its own trailing flags:
//
//	ripsbench parscale [-app nq|ida|gromos] [-n N] [-reps N] [-smoke] [-json FILE]
//
// where -n is the family's size knob (board for nq, paper
// configuration 1-3 for ida, cutoff in angstroms for gromos; 0 picks
// the family default), so the paper's Table I workload contrast can be
// replayed on real cores. -json additionally writes the machine-readable
// BENCH_par.json trajectory: the full curve plus a serial-vs-parallel
// plan-application comparison of the system-phase cost on a 16-worker
// mesh (see internal/exp.ParScaleJSON for the schema).
//
// The difftest experiment is the differential cross-validation
// harness: it samples configurations from the app x topology x policy
// x seed lattice and runs each on every backend (simulator, parallel
// RIPS, work stealing), requiring bit-identical answers and task
// totals, with per-phase invariant checks promoted to hard failures:
//
//	ripsbench difftest [-n N] [-seed N] [-smoke] [-config "..."]
//
// -config re-runs one configuration verbatim (the form failures are
// printed in); otherwise -n configurations are sampled from -seed, and
// -smoke restricts the pool to the cheap seven-app set CI gates on.
//
// The lattice experiment reuses the same configuration lattice as a
// performance probe grid (see internal/perfreg): each point is run on
// all three backends and its scheduling metrics are recorded, the
// deterministic simulator quantities exactly and the real-parallel
// ones advisorily. Against the committed BENCH_lattice.json baseline,
// any exact drift fails the command and prints a minimal reproducer:
//
//	ripsbench lattice [-smoke] [-baseline FILE] [-update] [-n N]
//	                  [-seed N] [-json FILE] [-config "..."]
//
// The default mode re-measures the baseline's own probe points and
// compares; -update regenerates the baseline from a fresh sample;
// -config measures one point verbatim (the form drifts are printed
// in).
//
// The serve experiment is the multi-tenant load generator: it drives
// a live ripsd (or an in-process server) with a job mix spread across
// tenants and priority lanes, polls every job to its terminal state,
// and reports per-lane throughput and latency percentiles plus the
// daemon's preemption and cache counters:
//
//	ripsbench serve [-addr URL] [-workers N] [-clients N] [-tenants N]
//	                [-jobs N] [-qps R] [-mix small|mixed|heavy]
//	                [-smoke] [-json FILE]
//
// -json writes the machine-readable BENCH_serve.json artifact (see
// internal/exp.ServeBenchJSON for the rips-serve/v1 schema).
//
// The cluster experiment calibrates the distributed transport: it
// stands up a small ripsd cluster (localhost TCP by default), echoes
// payloads of increasing size through the rips-wire/v1 frames, and
// fits the paper's alpha + beta*size message-cost line through the
// best round-trips, next to the simulator's modelled constants:
//
//	ripsbench cluster [-nodes N] [-reps N] [-mem] [-json FILE]
//
// -json writes the machine-readable BENCH_cluster.json artifact (see
// internal/exp.ClusterBenchJSON for the rips-cluster/v1 schema).
//
// The run experiment executes one workload through the public API and
// optionally emits the rips-result/v1 document ripsd streams:
//
//	ripsbench run [-app nq|ida|gromos] [-n N] [-procs N] [-topo T]
//	              [-alg A] [-backend B] [-timeout D] [-json PATH]
//
// so a CLI run, a committed BENCH artifact and a served job result all
// share one machine-readable schema (see runCmd).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rips/internal/apps/nqueens"
	"rips/internal/difftest"
	"rips/internal/exp"
	"rips/internal/invariant"
	"rips/internal/metrics"
	"rips/internal/ripsrt"
	"rips/internal/sim"
	"rips/internal/topo"
)

var (
	quick = flag.Bool("quick", false, "use reduced workloads and machine sizes")
	seed  = flag.Int64("seed", 1, "simulation seed")
	cases = flag.Int("cases", 100, "random load cases per Figure 4 point")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ripsbench [flags] fig4|table1|table2|fig5|table3|ablation|topologies|taxonomy|detail|parscale|difftest|lattice|run|serve|cluster|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	what := flag.Arg(0)
	if flag.NArg() > 1 && what != "parscale" && what != "difftest" && what != "lattice" && what != "run" && what != "serve" && what != "cluster" {
		flag.Usage()
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		start := time.Now() //ripslint:allow wallclock benchmark harness measures real elapsed time
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "ripsbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond)) //ripslint:allow wallclock reporting host elapsed time
	}

	switch what {
	case "fig4":
		run("fig4", fig4)
	case "table1":
		run("table1", func() error { _, err := table1(); return err })
	case "table2":
		run("table2", table2)
	case "fig5":
		run("fig5", fig5)
	case "table3":
		run("table3", table3)
	case "ablation":
		run("ablation", ablation)
	case "topologies":
		run("topologies", topologies)
	case "taxonomy":
		run("taxonomy", taxonomy)
	case "detail":
		run("detail", detail)
	case "parscale":
		run("parscale", func() error { return parscale(flag.Args()[1:]) })
	case "difftest":
		run("difftest", func() error { return difftestCmd(flag.Args()[1:]) })
	case "lattice":
		run("lattice", func() error { return latticeCmd(flag.Args()[1:]) })
	case "run":
		run("run", func() error { return runCmd(flag.Args()[1:]) })
	case "serve":
		run("serve", func() error { return serveCmd(flag.Args()[1:]) })
	case "cluster":
		run("cluster", func() error { return clusterCmd(flag.Args()[1:]) })
	case "all":
		run("fig4", fig4)
		run("table1+table2+fig5", fig5) // fig5 subsumes tables I and II
		run("table3", table3)
		run("ablation", ablation)
		run("topologies", topologies)
		run("taxonomy", taxonomy)
		run("detail", detail)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// cachedWorkloads caches the profiled evaluation set per process.
var cachedWorkloads []exp.Workload

func workloads() []exp.Workload {
	if cachedWorkloads == nil {
		fmt.Fprintln(os.Stderr, "ripsbench: profiling workloads (sequential runs)...")
		if *quick {
			cachedWorkloads = exp.QuickWorkloads()
		} else {
			cachedWorkloads = exp.PaperWorkloads()
		}
	}
	return cachedWorkloads
}

func table1Mesh() *topo.Mesh {
	if *quick {
		return topo.NewMesh(4, 4)
	}
	return topo.NewMesh(8, 4) // the paper's 32-processor Paragon mesh
}

func fig4() error {
	procs := []int{8, 16, 32, 64, 128, 256}
	n := *cases
	if *quick {
		procs = []int{8, 16, 32, 64}
		if n > 20 {
			n = 20
		}
	}
	pts := exp.Fig4(procs, []int{2, 5, 10, 20, 50, 100}, n, *seed)
	exp.PrintFig4(os.Stdout, pts)
	return nil
}

func table1() ([]metrics.Row, error) {
	rows, err := exp.Table1(workloads(), table1Mesh(), *seed, os.Stderr)
	if err != nil {
		return nil, err
	}
	exp.PrintTable1(os.Stdout, rows)
	return rows, nil
}

func table2() error {
	exp.PrintTable2(os.Stdout, workloads(), table1Mesh().Size())
	return nil
}

func fig5() error {
	rows, err := table1()
	if err != nil {
		return err
	}
	if err := table2(); err != nil {
		return err
	}
	exp.PrintFig5(os.Stdout, exp.Fig5(rows, exp.Table2(workloads(), table1Mesh().Size())))
	return nil
}

// table3 uses the paper's subset: the largest instance of each family.
func table3() error {
	all := workloads()
	var sel []exp.Workload
	if *quick {
		sel = all[:1]
	} else {
		// 15-queens, IDA* #3, GROMOS 16A — each family's largest.
		sel = []exp.Workload{all[2], all[5], all[8]}
		// The paper retunes RID's update factor to 0.7 for IDA* on
		// large machines.
		sel[1].RIDU = 0.7
	}
	sizes := []int{64, 128}
	if *quick {
		sizes = []int{16, 32}
	}
	rows, err := exp.Table3(sel, sizes, *seed)
	if err != nil {
		return err
	}
	exp.PrintTable3(os.Stdout, rows)
	return nil
}

func ablation() error {
	var w exp.Workload
	if *quick {
		w = exp.NewWorkload(nqueens.New(11, 3), 0.4)
	} else {
		w = exp.NewWorkload(nqueens.New(14, 4), 0.4)
	}
	rows, err := exp.Ablation(w, table1Mesh(), 5*sim.Millisecond, *seed)
	if err != nil {
		return err
	}
	exp.PrintAblation(os.Stdout, rows)
	return nil
}

// topologies compares RIPS across mesh, tree and hypercube machines.
func topologies() error {
	var w exp.Workload
	n := 32
	if *quick {
		w = exp.NewWorkload(nqueens.New(11, 3), 0.4)
		n = 16
	} else {
		w = exp.NewWorkload(nqueens.New(13, 4), 0.4)
	}
	rows, err := exp.Topologies(w, n, *seed)
	if err != nil {
		return err
	}
	exp.PrintTopologies(os.Stdout, rows)
	return nil
}

// taxonomy measures the paper's Section 1 problem classes.
func taxonomy() error {
	rows, err := exp.Taxonomy(exp.TaxonomyWorkloads(), table1Mesh(), *seed)
	if err != nil {
		return err
	}
	exp.PrintTaxonomy(os.Stdout, rows)
	return nil
}

// parscale runs the real-parallel scaling experiment on the
// internal/par backend: GOMAXPROCS swept from 1 to -maxworkers (NumCPU
// by default), RIPS, work stealing and the hierarchical hybrid side by
// side. -app selects the workload family (the Table I contrast on real
// cores: nq, ida or gromos); -n is that family's size knob; -domains
// shapes the hybrid partition (0 auto-detects the machine's affinity
// domains). Invariant checks (conservation, Theorem 1 balance) run
// inside every system phase unless disabled via RIPS_INVARIANTS.
// -smoke shrinks the run to seconds for CI.
func parscale(args []string) error {
	fs := flag.NewFlagSet("parscale", flag.ExitOnError)
	family := fs.String("app", "nq", "workload family: nq, ida or gromos")
	size := fs.Int("n", 0, "family size (nq board / ida config 1-3 / gromos cutoff in A); 0 picks the default")
	reps := fs.Int("reps", 3, "runs per point; the fastest is kept")
	domains := fs.Int("domains", 0, "hybrid affinity-domain count (0 auto-detects; clamped per point)")
	maxWorkers := fs.Int("maxworkers", 0, "top of the worker sweep; 0 means NumCPU (larger values oversubscribe)")
	smoke := fs.Bool("smoke", false, "tiny CI run: reduced workload, 1-2 workers, one rep")
	jsonPath := fs.String("json", "", "also write the BENCH_par.json trajectory (scaling curve + serial-vs-parallel system-phase comparison) to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxWorkers == 0 {
		*maxWorkers = runtime.NumCPU()
	}
	counts := exp.ParScaleCounts(*maxWorkers)
	if *smoke {
		*reps = 1
		counts = exp.ParScaleCounts(min(2, *maxWorkers))
		if *family == "nq" && *size == 0 {
			*size = 10
		}
	}
	a, err := exp.ParScaleApp(*family, *size)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ripsbench: parscale %s on %d cores, worker counts %v, %d reps, hybrid domains %d (invariants: %v)\n",
		a.Name(), runtime.NumCPU(), counts, *reps, *domains, invariant.Enabled())
	pts, err := exp.ParScale(a, counts, *reps, 0, *domains, *seed)
	if err != nil {
		return err
	}
	exp.PrintParScale(os.Stdout, a, pts)
	if *jsonPath == "" {
		return nil
	}
	// The headline comparison runs on a 16-worker mesh regardless of
	// the host core count (Cores in the JSON records the truth): the
	// per-phase number isolates the stop-the-world system-phase cost
	// under a controlled heavy migration, which the parallel apply
	// attacks.
	sp := exp.SystemPhaseCompare(16, 2048, 8, *reps)
	f, err := os.Create(*jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := exp.WriteParScaleJSON(f, a, *reps, pts, sp); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ripsbench: wrote %s (serial %v/phase vs parallel %v/phase at %d workers)\n",
		*jsonPath, time.Duration(sp.SerialNsPerPhase), time.Duration(sp.ParallelNsPerPhase), sp.Workers)
	return nil
}

// difftestCmd runs the differential cross-validation lattice (see
// internal/difftest): every sampled configuration on every backend,
// identical answers required, invariants promoted to hard failures.
// Failing configurations are shrunk to minimal repros before printing.
func difftestCmd(args []string) error {
	fs := flag.NewFlagSet("difftest", flag.ExitOnError)
	n := fs.Int("n", 200, "number of lattice configurations to sample")
	dseed := fs.Int64("seed", 1, "master seed naming the sample")
	smoke := fs.Bool("smoke", false, "restrict the app pool to the cheap seven-app set (the CI gate)")
	one := fs.String("config", "", "re-run one configuration verbatim instead of sampling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h := difftest.NewHarness()
	defer h.Close()
	if *one != "" {
		cfg, err := difftest.Parse(*one)
		if err != nil {
			return err
		}
		if f := h.Check(cfg); f != nil {
			return f
		}
		fmt.Printf("ok: %s identical on all backends\n", cfg)
		return nil
	}
	cfgs := difftest.Sample(*n, *dseed, *smoke)
	fmt.Fprintf(os.Stderr, "ripsbench: difftest %d configs (seed %d, smoke %v) on %d cores\n",
		len(cfgs), *dseed, *smoke, runtime.NumCPU())
	rep := h.Run(cfgs, os.Stderr)
	fmt.Printf("difftest: %d configs, %d failures; per app:", rep.Configs, len(rep.Failures))
	for _, s := range difftest.Apps() {
		if c := rep.PerApp[s.Name]; c > 0 {
			fmt.Printf(" %s=%d", s.Name, c)
		}
	}
	fmt.Println()
	if len(rep.Failures) == 0 {
		return nil
	}
	for _, f := range rep.Failures {
		fmt.Printf("FAIL %v\n", f)
	}
	min := difftest.Shrink(rep.Failures[0].Config, func(c difftest.Config) bool { return h.Check(c) != nil })
	fmt.Printf("minimal repro: ripsbench difftest -config %q\n", min.String())
	return fmt.Errorf("difftest: %d of %d configurations failed", len(rep.Failures), rep.Configs)
}

// detail reproduces the Section 4 narrative: 15-Queens under RIPS on
// the 8x4 mesh — system phases, nonlocal tasks, migration volume.
func detail() error {
	n := 15
	if *quick {
		n = 12
	}
	a := nqueens.New(n, 4)
	res, err := ripsrt.Run(ripsrt.Config{Mesh: table1Mesh(), App: a, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("Section 4 narrative detail: %s under RIPS on %s\n", a.Name(), table1Mesh().Name())
	fmt.Printf("  system phases:        %d   (paper: ~8)\n", res.Phases)
	fmt.Printf("  nonlocal tasks:       %d   (paper: ~1000)\n", res.Nonlocal)
	fmt.Printf("  nonlocal per phase:   %.0f   (paper: ~125)\n", float64(res.Nonlocal)/float64(res.Phases))
	fmt.Printf("  task-link transfers:  %d\n", res.Migrated)
	fmt.Printf("  total overhead Th:    %v   (paper: ~510 ms)\n", res.Overhead)
	fmt.Printf("  idle time Ti:         %v   (paper: ~30 ms)\n", res.Idle)
	fmt.Printf("  execution time T:     %v   (paper: 10.9 s)\n", res.Time)
	fmt.Printf("  task total per phase: %v\n", res.PhaseTotals)
	return nil
}
