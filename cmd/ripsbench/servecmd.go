//ripslint:allow-file wallclock load generator measures real client-observed latency and paces submissions in wall time

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"rips"
	"rips/internal/exp"
	"rips/internal/serve"
)

// serveCmd is the multi-tenant load generator: it drives a live ripsd
// (or an in-process server when -addr is empty) with a job mix spread
// across synthetic tenants and priority lanes, polls every submission
// to its terminal state, and reports per-lane throughput and latency
// percentiles plus the server's preemption and cache counters — the
// BENCH_serve.json artifact:
//
//	ripsbench serve [-addr URL] [-workers N] [-clients N] [-tenants N]
//	                [-jobs N] [-qps R] [-mix small|mixed|heavy]
//	                [-smoke] [-json PATH]
//
// The mix cycles a small set of distinct workloads, so repeats hit the
// server's result cache once their first run completes; high-priority
// submissions ask for the whole pool, so they stall behind running
// work and exercise the preemption path. -qps paces the aggregate
// submission rate (0 means closed-loop: each client submits as soon as
// its previous job finishes).
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "", "ripsd base URL (e.g. http://127.0.0.1:8080); empty runs an in-process server")
	workers := fs.Int("workers", max(8, runtime.NumCPU()), "in-process server pool size (worker goroutines, ignored with -addr)")
	clients := fs.Int("clients", 4, "concurrent submitting clients")
	tenants := fs.Int("tenants", 3, "synthetic tenants to spread the load over")
	jobs := fs.Int("jobs", 120, "total jobs to submit")
	qps := fs.Float64("qps", 0, "aggregate submission rate; 0 means closed-loop")
	mix := fs.String("mix", "mixed", "workload mix: small, mixed or heavy")
	smoke := fs.Bool("smoke", false, "tiny CI run: small mix, few jobs, 4 workers")
	jsonPath := fs.String("json", "", "write BENCH_serve.json to this path (\"-\" for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *smoke {
		*mix = "small"
		*jobs = 24
		*workers = 4
	}
	specs, ok := serveMixes[*mix]
	if !ok {
		return fmt.Errorf("serve: unknown mix %q (want small, mixed or heavy)", *mix)
	}
	if *clients < 1 || *tenants < 1 || *jobs < 1 {
		return fmt.Errorf("serve: -clients, -tenants and -jobs must be positive")
	}

	base := *addr
	if base == "" {
		srv, err := serve.NewServer(serve.Options{Workers: *workers})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			_ = srv.Close(ctx)
		}()
		base = ts.URL
	}

	// The pool size bounds what a whole-pool high-priority job may ask
	// for; against a remote daemon, learn it from /healthz.
	poolWorkers, err := serveWorkers(base)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ripsbench: serve %d jobs (%s mix) via %s: %d clients, %d tenants, %d workers, qps %v\n",
		*jobs, *mix, base, *clients, *tenants, poolWorkers, *qps)

	// Pacing: the producer feeds job indices; with -qps it spaces the
	// pushes, closed-loop it floods the buffer and the clients govern.
	indices := make(chan int, *jobs)
	go func() {
		defer close(indices)
		var interval time.Duration
		if *qps > 0 {
			interval = time.Duration(float64(time.Second) / *qps)
		}
		for i := 0; i < *jobs; i++ {
			indices <- i
			if interval > 0 {
				time.Sleep(interval) //ripslint:allow sleep -qps pacing is the load generator's purpose; it shapes arrival times, never what any job computes
			}
		}
	}()

	samples := make([]exp.ServeSample, *jobs)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				spec := specs[i%len(specs)]
				spec.Tenant = fmt.Sprintf("t%d", i%*tenants)
				lane := laneFor(i)
				spec.Priority = lane
				if lane == "high" {
					// Whole-pool asks stall behind running work and
					// force the preemption path.
					spec.Config.Procs = poolWorkers
				}
				t0 := time.Now()
				state, cacheHit, err := submitAndWait(base, spec)
				if err != nil {
					fail(fmt.Errorf("job %d (%s %s/%s): %w", i, spec.App, spec.Tenant, lane, err))
					return
				}
				samples[i] = exp.ServeSample{
					Tenant:   spec.Tenant,
					Lane:     lane,
					State:    state,
					CacheHit: cacheHit,
					Latency:  time.Since(t0),
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	stats, err := serveStats(base)
	if err != nil {
		return err
	}
	doc := exp.ServeBenchReport(samples, elapsed, exp.ServeCounters{
		Preemptions: stats.Preemptions,
		Requeues:    stats.Requeues,
		Rejects:     stats.Rejects,
		CacheHits:   stats.Cache.Hits,
		CacheMisses: stats.Cache.Misses,
	})
	doc.Workers = poolWorkers
	doc.Clients = *clients
	doc.Tenants = *tenants
	doc.QPS = *qps
	doc.Mix = *mix
	exp.PrintServeBench(os.Stdout, doc)

	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := exp.WriteServeBench(out, doc); err != nil {
			return err
		}
		if *jsonPath != "-" {
			fmt.Fprintf(os.Stderr, "ripsbench: wrote %s\n", *jsonPath)
		}
	}
	if *smoke && doc.Done != doc.Jobs {
		return fmt.Errorf("serve: smoke run finished %d of %d jobs", doc.Done, doc.Jobs)
	}
	return nil
}

// serveMixes are the workload palettes, cycled by job index. Each mix
// repeats a handful of distinct configs so the result cache sees real
// traffic; sizes are chosen so a run is milliseconds (small) to
// fractions of a second (heavy) per job on a few workers.
var serveMixes = map[string][]serve.JobSpec{
	"small": {
		{App: "nq", Size: 8, Config: rips.ConfigJSON{Procs: 1, Backend: "parallel"}},
		{App: "nq", Size: 8, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}},
		{App: "nq", Size: 9, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}},
		{App: "nq", Size: 9, Config: rips.ConfigJSON{Procs: 1, Backend: "parallel"}},
	},
	"mixed": {
		{App: "nq", Size: 9, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}},
		{App: "nq", Size: 10, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}},
		{App: "nq", Size: 10, Config: rips.ConfigJSON{Procs: 4, Backend: "parallel"}},
		{App: "nq", Size: 11, Config: rips.ConfigJSON{Procs: 4, Backend: "parallel"}},
		{App: "nq", Size: 9, Config: rips.ConfigJSON{Procs: 1, Backend: "parallel"}},
		{App: "nq", Size: 8, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}},
	},
	"heavy": {
		{App: "nq", Size: 11, Config: rips.ConfigJSON{Procs: 4, Backend: "parallel"}},
		{App: "nq", Size: 12, Config: rips.ConfigJSON{Procs: 4, Backend: "parallel"}},
		{App: "nq", Size: 11, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}},
		{App: "nq", Size: 12, Config: rips.ConfigJSON{Procs: 2, Backend: "parallel"}},
	},
}

// laneFor spreads priorities deterministically over job indices:
// roughly one high and one low for every five normal submissions.
func laneFor(i int) string {
	switch {
	case i%7 == 3:
		return "high"
	case i%5 == 1:
		return "low"
	default:
		return "normal"
	}
}

// submitAndWait posts one spec and polls the job to a terminal state,
// returning how it ended and whether the result came from the cache.
func submitAndWait(base string, spec serve.JobSpec) (state string, cacheHit bool, err error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", false, err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", false, err
	}
	var job serve.JobJSON
	decErr := json.NewDecoder(resp.Body).Decode(&job)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", false, fmt.Errorf("submit: status %d (%s)", resp.StatusCode, job.Error)
	}
	if decErr != nil {
		return "", false, decErr
	}
	for {
		if serve.Terminal(job.State) {
			if job.State == serve.StateFailed {
				return job.State, job.CacheHit, fmt.Errorf("job failed: %s", job.Error)
			}
			return job.State, job.CacheHit, nil
		}
		time.Sleep(5 * time.Millisecond) //ripslint:allow sleep client-side poll interval against the HTTP API; the server's scheduling is untouched
		resp, err := http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			return "", false, err
		}
		job = serve.JobJSON{}
		decErr := json.NewDecoder(resp.Body).Decode(&job)
		_ = resp.Body.Close()
		if decErr != nil {
			return "", false, decErr
		}
	}
}

// serveWorkers asks /healthz for the daemon's pool size.
func serveWorkers(base string) (int, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0, fmt.Errorf("serve: daemon unreachable: %w", err)
	}
	defer resp.Body.Close()
	var health struct {
		Workers int `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return 0, err
	}
	if health.Workers < 1 {
		return 0, fmt.Errorf("serve: daemon reports %d workers", health.Workers)
	}
	return health.Workers, nil
}

// serveStats fetches the /v1/stats counters once after the run.
func serveStats(base string) (serve.StatsJSON, error) {
	var stats serve.StatsJSON
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return stats, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&stats)
	return stats, err
}
