package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rips"
	"rips/internal/exp"
)

// runCmd is the single-run front door over the public API — the CLI
// twin of one ripsd job submission:
//
//	ripsbench run [-app nq|ida|gromos] [-n N] [-procs N] [-topo T]
//	              [-alg A] [-backend B] [-eager] [-all] [-detect D]
//	              [-timeout D] [-seed N] [-json PATH]
//
// It parses the algorithm and backend with the same ParseAlgorithm/
// ParseBackend the server uses, assembles the configuration through
// rips.NewConfig (so a bad combination errors here, not mid-run), runs
// via rips.RunContext (Ctrl-C-able through -timeout), and with -json
// emits the same rips-result/v1 document ripsd streams ("-" for
// stdout), so a CLI run and a served run are comparable byte for byte.
func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	family := fs.String("app", "nq", "workload family: nq, ida or gromos")
	size := fs.Int("n", 0, "family size (nq board / ida config 1-3 / gromos cutoff in A); 0 picks the default")
	procs := fs.Int("procs", 4, "machine size (simulated nodes or real workers)")
	topoName := fs.String("topo", "", "topology: mesh, tree or hypercube (default mesh)")
	algName := fs.String("alg", "rips", "algorithm: rips, random, gradient, rid, static or steal")
	backendName := fs.String("backend", "simulate", "backend: simulate or parallel")
	eager := fs.Bool("eager", false, "RIPS eager local policy")
	all := fs.Bool("all", false, "RIPS ALL global policy")
	detect := fs.Duration("detect", 0, "parallel-backend detector interval (0 adapts)")
	timeout := fs.Duration("timeout", 0, "cancel the run after this long (0 means no limit)")
	runSeed := fs.Int64("seed", 1, "reproducibility seed")
	jsonPath := fs.String("json", "", "write the rips-result/v1 document to this path (\"-\" for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	a, err := exp.ParScaleApp(*family, *size)
	if err != nil {
		return err
	}
	alg, err := rips.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	backend, err := rips.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	opts := []rips.Option{
		rips.WithWorkers(*procs),
		rips.WithTopology(*topoName),
		rips.WithAlgorithm(alg),
		rips.WithBackend(backend),
		rips.WithSeed(*runSeed),
	}
	if *eager {
		opts = append(opts, rips.WithEager())
	}
	if *all {
		opts = append(opts, rips.WithAll())
	}
	if *detect != 0 {
		opts = append(opts, rips.WithDetectInterval(*detect))
	}
	cfg, err := rips.NewConfig(opts...)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, runErr := rips.RunContext(ctx, a, cfg)
	if runErr != nil && !res.Canceled {
		return runErr
	}

	if *jsonPath != "" {
		doc := rips.EncodeResult(cfg, res)
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
	}
	if res.Canceled {
		fmt.Fprintf(os.Stderr, "ripsbench: run canceled after %v: partial result (%d tasks executed)\n", *timeout, res.Tasks)
		return runErr
	}
	fmt.Printf("%s  %s/%s  P=%d  answer=%d  tasks=%d  phases=%d  nonlocal=%d  eff=%.3f  wall=%v\n",
		a.Name(), alg, backend, cfg.Procs, res.AppResult, res.Tasks, res.Phases, res.Nonlocal,
		res.Efficiency, res.Wall.Round(time.Microsecond))
	return nil
}
