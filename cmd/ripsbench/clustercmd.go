package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rips/internal/cluster"
	"rips/internal/exp"
)

// clusterCmd measures the distributed transport's point-to-point
// message cost and fits the paper's alpha + beta*size line through it
// (see internal/exp.ClusterBench). The document is the committed
// BENCH_cluster.json artifact.
func clusterCmd(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	nodes := fs.Int("nodes", 3, "cluster width")
	reps := fs.Int("reps", 32, "echoes per payload size; the best (minimum) RTT is kept")
	mem := fs.Bool("mem", false, "measure the in-memory transport instead of localhost TCP")
	jsonPath := fs.String("json", "", "write the rips-cluster/v1 document to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := exp.ClusterBenchOptions{Nodes: *nodes, Reps: *reps}
	if *mem {
		opts.Transport = cluster.NewMemTransport()
		opts.TransportName = "mem"
		opts.Addr = func(i int) string { return fmt.Sprintf("mem://bench%d", i) }
	}
	doc, err := exp.ClusterBench(opts)
	if err != nil {
		return err
	}

	fmt.Printf("cluster wire calibration: %d nodes over %s, best of %d echoes per point\n",
		doc.Nodes, doc.Transport, doc.Reps)
	fmt.Printf("%10s  %12s\n", "bytes", "best RTT")
	for _, p := range doc.Points {
		fmt.Printf("%10d  %12v\n", p.Bytes, time.Duration(p.BestRTTNs))
	}
	fmt.Printf("one-way fit:  alpha = %v, beta = %.2f ns/byte\n",
		time.Duration(doc.AlphaNs), doc.BetaNsPerByte)
	fmt.Printf("model (sim.DefaultLatency): alpha = %v, beta = %.2f ns/byte\n",
		time.Duration(doc.ModelAlphaNs), doc.ModelBetaNsPerByte)

	if *jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}
