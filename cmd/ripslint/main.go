// Command ripslint runs the project's static-analysis suite over the
// module. It is stdlib-only (go/ast, go/parser, go/types) and checks
// properties the compiler cannot: simulated-time determinism, dropped
// errors, the bare-panic policy, the scheduler packages'
// conservation-test protocol, and — when the whole module is in view —
// the call-graph-backed proofs: hot-path allocation/blocking freedom,
// atomic/plain access mixing, context threading and dead-waiver
// detection. See internal/analysis for the analyzers and the
// //ripslint:allow directive syntax.
//
// Usage:
//
//	go run ./cmd/ripslint ./...
//	go run ./cmd/ripslint -json ./... > ripslint.json
//	go run ./cmd/ripslint -tags ripsperturb ./...
//	go run ./cmd/ripslint ./internal/sim ./internal/ripsrt
//
// The whole-program analyzers need the complete module as their
// candidate set (call-graph resolution over a fragment would be
// unsound), so they run only when the resolved package list covers
// every package of the module — in practice, when invoked as
// `ripslint ./...` from the module root. A partial invocation runs the
// per-package analyzers only and says so on stderr.
//
// Findings print one per line as file:line:col: [analyzer/check] msg;
// with -json, a stable machine-readable report (schema rips-lint/v1)
// is written to stdout instead, including waived findings. The exit
// status is 1 if any unwaived finding (or load/type error) was
// produced, 0 on a clean tree, 2 on driver errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rips/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ripslint [flags] [packages]\n\npackages are ./... or package directories; default ./...\n")
		flag.PrintDefaults()
	}
	verbose := flag.Bool("v", false, "list analyzed packages")
	jsonOut := flag.Bool("json", false, "write a rips-lint/v1 JSON report to stdout")
	tags := flag.String("tags", "", "comma-separated build tags for file selection (e.g. ripsperturb)")
	flag.Parse()
	if err := run(flag.Args(), *verbose, *jsonOut, *tags); err != nil {
		fmt.Fprintln(os.Stderr, "ripslint:", err)
		os.Exit(2)
	}
}

// jsonReport is the stable -json output schema. Consumers key on the
// Schema field; additive changes only.
type jsonReport struct {
	Schema   string        `json:"schema"` // "rips-lint/v1"
	Module   string        `json:"module"`
	Findings []jsonFinding `json:"findings"`
	// Errors are load/type errors that made the run incomplete.
	Errors []string `json:"errors,omitempty"`
}

// jsonFinding is one finding; File is module-relative with forward
// slashes so reports are comparable across checkouts.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Check    string `json:"check"`
	Msg      string `json:"msg"`
	Waived   bool   `json:"waived"`
}

func run(patterns []string, verbose, jsonOut bool, tags string) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, modPath, err := analysis.ModuleInfo(cwd)
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Resolve patterns to module-relative package directories.
	seen := map[string]bool{}
	var dirs []string
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return fmt.Errorf("package %s is outside module %s", pat, modPath)
		}
		if rel == "." {
			rel = ""
		}
		if recursive {
			sub, err := analysis.PackageDirs(root, rel)
			if err != nil {
				return err
			}
			for _, d := range sub {
				add(d)
			}
		} else {
			add(filepath.ToSlash(rel))
		}
	}

	loader := analysis.NewLoader(root, modPath)
	if tags != "" {
		loader.BuildTags = strings.Split(tags, ",")
	}

	// The whole-program analyzers are sound only over the full module:
	// run them when the resolved directory set covers every package.
	allDirs, err := analysis.PackageDirs(root, "")
	if err != nil {
		return err
	}
	wholeModule := true
	for _, d := range allDirs {
		if !seen[d] {
			wholeModule = false
			break
		}
	}

	var loadErrors []string
	var pkgs []*analysis.Package
	for _, rel := range dirs {
		pkg, err := loader.Load(rel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ripslint: %v\n", err)
			loadErrors = append(loadErrors, err.Error())
			continue
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "ripslint: analyzing %s\n", pkg.Path)
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "ripslint: %s: type error: %v\n", pkg.Path, terr)
			loadErrors = append(loadErrors, terr.Error())
		}
		pkgs = append(pkgs, pkg)
	}

	var findings []analysis.Finding
	if wholeModule {
		findings = analysis.RunModule(pkgs, analysis.All(), analysis.AllModule())
	} else {
		fmt.Fprintln(os.Stderr, "ripslint: partial package list: running per-package analyzers only (whole-program checks need ./... from the module root)")
		for _, pkg := range pkgs {
			findings = append(findings, analysis.Run(pkg, analysis.All())...)
		}
	}
	unwaived := analysis.Unwaived(findings)

	if jsonOut {
		report := jsonReport{Schema: "rips-lint/v1", Module: modPath, Errors: loadErrors}
		report.Findings = []jsonFinding{} // never null
		for _, f := range findings {
			rel, err := filepath.Rel(root, f.Pos.Filename)
			if err != nil {
				rel = f.Pos.Filename
			}
			report.Findings = append(report.Findings, jsonFinding{
				File:     filepath.ToSlash(rel),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Check:    f.Check,
				Msg:      f.Msg,
				Waived:   f.Waived,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		for _, f := range unwaived {
			fmt.Println(f)
		}
	}

	if len(unwaived) > 0 || len(loadErrors) > 0 {
		os.Exit(1)
	}
	return nil
}
