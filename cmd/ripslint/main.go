// Command ripslint runs the project's static-analysis suite over the
// module. It is stdlib-only (go/ast, go/parser, go/types) and checks
// properties the compiler cannot: simulated-time determinism, dropped
// errors, the bare-panic policy, and the scheduler packages'
// conservation-test protocol. See internal/analysis for the analyzers
// and the //ripslint:allow directive syntax.
//
// Usage:
//
//	go run ./cmd/ripslint ./...
//	go run ./cmd/ripslint ./internal/sim ./internal/ripsrt
//
// Findings print one per line as file:line:col: [analyzer/check] msg;
// the exit status is 1 if anything was found, 0 on a clean tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rips/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ripslint [packages]\n\npackages are ./... or package directories; default ./...\n")
		flag.PrintDefaults()
	}
	verbose := flag.Bool("v", false, "list analyzed packages")
	flag.Parse()
	if err := run(flag.Args(), *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "ripslint:", err)
		os.Exit(2)
	}
}

func run(patterns []string, verbose bool) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, modPath, err := analysis.ModuleInfo(cwd)
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Resolve patterns to module-relative package directories.
	seen := map[string]bool{}
	var dirs []string
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return fmt.Errorf("package %s is outside module %s", pat, modPath)
		}
		if rel == "." {
			rel = ""
		}
		if recursive {
			sub, err := analysis.PackageDirs(root, rel)
			if err != nil {
				return err
			}
			for _, d := range sub {
				add(d)
			}
		} else {
			add(filepath.ToSlash(rel))
		}
	}

	loader := analysis.NewLoader(root, modPath)
	analyzers := analysis.All()
	exit := 0
	for _, rel := range dirs {
		pkg, err := loader.Load(rel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ripslint: %v\n", err)
			exit = 1
			continue
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "ripslint: analyzing %s\n", pkg.Path)
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "ripslint: %s: type error: %v\n", pkg.Path, terr)
			exit = 1
		}
		for _, f := range analysis.Run(pkg, analyzers) {
			fmt.Println(f)
			exit = 1
		}
	}
	if exit != 0 {
		os.Exit(1)
	}
	return nil
}
