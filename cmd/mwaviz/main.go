// Command mwaviz traces the Mesh Walking Algorithm on a mesh: it
// prints the load before and after, the intermediate row flows
// (Figure 3's y vector), the per-node vertical send vectors, and the
// resulting per-link moves, then compares the transfer cost with the
// min-cost-flow optimum.
//
// Usage:
//
//	mwaviz [-rows N] [-cols N] [-mean W] [-seed N] [load...]
//
// With positional arguments, they are the per-node loads in row-major
// order; otherwise a random load with the given mean is drawn.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"rips/internal/sched/flow"
	"rips/internal/sched/mwa"
	"rips/internal/topo"
)

var (
	rows = flag.Int("rows", 4, "mesh rows")
	cols = flag.Int("cols", 4, "mesh columns")
	mean = flag.Int("mean", 10, "mean random load per node")
	seed = flag.Int64("seed", 1, "random seed")
)

func main() {
	flag.Parse()
	mesh := topo.NewMesh(*rows, *cols)
	n := mesh.Size()

	load := make([]int, n)
	if flag.NArg() > 0 {
		if flag.NArg() != n {
			fmt.Fprintf(os.Stderr, "mwaviz: %d loads given for a %d-node mesh\n", flag.NArg(), n)
			os.Exit(2)
		}
		for i, s := range flag.Args() {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "mwaviz: bad load %q\n", s)
				os.Exit(2)
			}
			load[i] = v
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		for i := range load {
			load[i] = rng.Intn(2**mean + 1)
		}
	}

	r, err := mwa.Plan(mesh, load)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mwaviz:", err)
		os.Exit(1)
	}

	fmt.Printf("Mesh Walking Algorithm on %s — T=%d, wavg=%d, R=%d\n\n",
		mesh.Name(), r.Total, r.Avg, r.Rem)
	printGrid(mesh, "initial load w", load)
	fmt.Printf("row sums s = %v\nprefix   t = %v\nrow flows y = %v  (y_i > 0: row i sends down)\n\n",
		r.S, r.T1, r.Y)
	printGrid(mesh, "downward sends d", flatten(mesh, r.D))
	printGrid(mesh, "upward sends u", flatten(mesh, r.U))
	printGrid(mesh, "final quota q", r.Quota)

	fmt.Printf("moves (%d bulk transfers, %d task·links, %d comm steps):\n",
		len(r.Plan.Moves), r.Plan.Cost(), r.Plan.Steps)
	for _, m := range r.Plan.Moves {
		fi, fj := mesh.Coord(m.From)
		ti, tj := mesh.Coord(m.To)
		fmt.Printf("  (%d,%d) -> (%d,%d): %d tasks\n", fi, fj, ti, tj, m.Count)
	}

	opt, err := flow.Cost(mesh, load)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mwaviz:", err)
		os.Exit(1)
	}
	fmt.Printf("\ncost: MWA=%d  optimal=%d", r.Plan.Cost(), opt)
	if opt > 0 {
		fmt.Printf("  normalized=+%.1f%%", 100*float64(r.Plan.Cost()-opt)/float64(opt))
	}
	fmt.Println()
}

func flatten(m *topo.Mesh, grid [][]int) []int {
	out := make([]int, m.Size())
	for i := range grid {
		for j, v := range grid[i] {
			out[m.ID(i, j)] = v
		}
	}
	return out
}

func printGrid(m *topo.Mesh, title string, v []int) {
	fmt.Println(title + ":")
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			fmt.Printf(" %4d", v[m.ID(i, j)])
		}
		fmt.Println()
	}
	fmt.Println()
}
