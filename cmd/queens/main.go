// Command queens runs the exhaustive N-Queens search on the simulated
// machine under a chosen scheduling algorithm and reports the paper's
// metrics for that single run.
//
// Usage:
//
//	queens [-n N] [-procs P] [-alg rips|random|gradient|rid] [-seed S]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"rips"
)

var (
	n     = flag.Int("n", 13, "board size")
	procs = flag.Int("procs", 32, "number of processors")
	alg   = flag.String("alg", "rips", "scheduler: rips, random, gradient, rid or static")
	seed  = flag.Int64("seed", 1, "simulation seed")
)

func main() {
	flag.Parse()
	algorithm, err := rips.ParseAlgorithm(*alg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "queens:", err)
		os.Exit(2)
	}
	cfg, err := rips.NewConfig(
		rips.WithWorkers(*procs),
		rips.WithAlgorithm(algorithm),
		rips.WithSeed(*seed),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "queens:", err)
		os.Exit(2)
	}

	a := rips.NQueens(*n)
	start := time.Now() //ripslint:allow wallclock measures real solve time of the host run
	res, err := rips.RunContext(context.Background(), a, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "queens:", err)
		os.Exit(1)
	}
	fmt.Printf("%s under %s on %d processors (simulated in %v)\n",
		a.Name(), algorithm, *procs, time.Since(start).Round(time.Millisecond)) //ripslint:allow wallclock reporting host solve time
	fmt.Printf("  tasks:         %d (%d executed off their origin node)\n", res.Tasks, res.Nonlocal)
	fmt.Printf("  sequential Ts: %v\n", res.SeqTime)
	fmt.Printf("  parallel T:    %v\n", res.Time)
	fmt.Printf("  overhead Th:   %v per node\n", res.Overhead)
	fmt.Printf("  idle Ti:       %v per node\n", res.Idle)
	fmt.Printf("  speedup:       %.1f   efficiency: %.0f%%\n", res.Speedup, 100*res.Efficiency)
	if res.Phases > 0 {
		fmt.Printf("  system phases: %d\n", res.Phases)
	}
}
