// Command ripsd serves the incremental scheduler as a multi-tenant
// service: one long-running process owning one shared worker pool,
// partitioned into sub-pools so tenants' jobs run concurrently,
// with weighted fair admission per tenant, priority lanes whose
// high-priority jobs preempt lower ones, and a result cache keyed on
// the canonical workload config. Submissions arrive over HTTP; each
// run streams per-phase progress and its final rips-result/v1
// document back over SSE.
//
// Usage:
//
//	ripsd [-addr HOST:PORT] [-workers N] [-domains N] [-queue N]
//	      [-cache N] [-weight tenant=N]... [-drain-timeout D]
//	      [-cluster HOST:PORT [-join HOST:PORT]]
//
// -queue bounds each tenant's queued (not running) jobs — one noisy
// tenant gets 503s without starving the rest. -weight sets a tenant's
// fair-share weight (default 1; repeatable). -cache sizes the result
// cache in entries. -domains partitions the pool into affinity domains
// so small jobs' sub-pool leases land inside one domain's cache
// hierarchy (0 auto-detects the machine's domains).
//
// -cluster makes the process a node of a ripsd cluster: it listens for
// the rips-wire/v1 peer protocol on the given address, and -join merges
// it into the cluster an existing node belongs to. Submissions with
// "backend": "cluster" (to any node — the ring routes them) then run
// the RIPS phase protocol across every member process, one executor
// per node, and GET /v1/cluster reports the membership ring.
//
// Endpoints:
//
//	GET  /healthz                liveness and pool size
//	GET  /metrics                Prometheus text exposition: queue depths
//	                             and wait ages per tenant and lane, pool
//	                             utilization, dispatch/preemption/cache
//	                             counters, phase- and job-latency
//	                             histograms (stdlib-rendered, no deps)
//	GET  /v1/stats               lanes, tenants, pool and cache counters
//	GET  /v1/jobs                jobs in submission order
//	POST /v1/jobs                submit {"app", "size", "config",
//	                             "tenant", "priority"} (202, 400, 503)
//	GET  /v1/jobs/{id}           one job
//	POST /v1/jobs/{id}/cancel    request cancellation
//	GET  /v1/jobs/{id}/events    SSE: phase events, then result/error
//
// On SIGTERM or SIGINT the daemon stops admitting (new submissions get
// 503), finishes the queued and running jobs within -drain-timeout,
// then exits; a second signal — or the timeout — cancels the running
// job through the same context path a client cancel uses.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rips/internal/cluster"
	"rips/internal/serve"
	"rips/internal/tenant"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "shared pool size (worker goroutines)")
	domains := flag.Int("domains", 0, "pool affinity domains; leases prefer a single domain (0 auto-detects)")
	queue := flag.Int("queue", serve.DefaultQueueLimit, "per-tenant admission queue limit")
	cacheEntries := flag.Int("cache", tenant.DefaultCacheEntries, "result cache entries")
	weights := map[string]int{}
	flag.Func("weight", "tenant fair-share weight as name=N (repeatable, default 1)", func(v string) error {
		name, num, ok := strings.Cut(v, "=")
		if !ok || name == "" {
			return fmt.Errorf("want tenant=N, got %q", v)
		}
		w, err := strconv.Atoi(num)
		if err != nil || w < 1 {
			return fmt.Errorf("weight for %q must be a positive integer, got %q", name, num)
		}
		weights[name] = w
		return nil
	})
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "grace period for in-flight jobs on shutdown")
	clusterAddr := flag.String("cluster", "", "cluster listen address (HOST:PORT); makes this process a cluster node")
	join := flag.String("join", "", "address of an existing cluster node to join (requires -cluster)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "ripsd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *join != "" && *clusterAddr == "" {
		fmt.Fprintln(os.Stderr, "ripsd: -join requires -cluster")
		flag.Usage()
		os.Exit(2)
	}

	var node *cluster.Node
	if *clusterAddr != "" {
		var err error
		node, err = cluster.Start(cluster.Options{Addr: *clusterAddr})
		if err != nil {
			log.Fatalf("ripsd: %v", err)
		}
		defer func() { _ = node.Close() }()
		if *join != "" {
			if err := node.Join(*join); err != nil {
				log.Fatalf("ripsd: %v", err)
			}
		}
		log.Printf("ripsd: cluster node %s (%d members)", node.Addr(), len(node.Members()))
	}

	srv, err := serve.NewServer(serve.Options{
		Workers:      *workers,
		Domains:      *domains,
		QueueLimit:   *queue,
		CacheEntries: *cacheEntries,
		Weights:      weights,
		Cluster:      node,
	})
	if err != nil {
		log.Fatalf("ripsd: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// First signal: drain. Second signal (ctx restored): hard stop.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("ripsd: serving on %s with %d workers (queue limit %d)", *addr, srv.Workers(), *queue)

	select {
	case err := <-errc:
		log.Fatalf("ripsd: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us
	log.Printf("ripsd: draining (up to %v)", *drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Close(drainCtx); err != nil {
		log.Printf("ripsd: drain incomplete, canceling in-flight work: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("ripsd: http shutdown: %v", err)
	}
	log.Printf("ripsd: stopped")
}
