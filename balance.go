package rips

import (
	"rips/internal/sched"
	"rips/internal/sched/flow"
	"rips/internal/sched/mwa"
	"rips/internal/topo"
)

// Move directs Count tasks from node From to an adjacent node To on
// the mesh (nodes are numbered row-major).
type Move = sched.Move

// BalanceResult is the outcome of one load-balancing plan.
type BalanceResult struct {
	// Moves is the feasible, ordered per-link transfer sequence.
	Moves []Move
	// Quota is each node's post-balance task count (within one of the
	// average everywhere — the paper's Theorem 1).
	Quota []int
	// Cost is the per-link transfer total ∑e_k.
	Cost int
	// Steps is the number of communication steps the distributed
	// algorithm needs: 3(rows+cols).
	Steps int
}

// BalanceMesh runs the Mesh Walking Algorithm — the paper's parallel
// scheduling algorithm — on a rows x cols mesh whose node i holds
// load[i] tasks (row-major order). It is the pure planning form; the
// RIPS runtime executes the same algorithm with messages.
func BalanceMesh(rows, cols int, load []int) (BalanceResult, error) {
	r, err := mwa.Plan(topo.NewMesh(rows, cols), load)
	if err != nil {
		return BalanceResult{}, err
	}
	return BalanceResult{
		Moves: r.Plan.Moves,
		Quota: r.Quota,
		Cost:  r.Plan.Cost(),
		Steps: r.Plan.Steps,
	}, nil
}

// OptimalCost returns the minimum possible per-link transfer total for
// balancing the load on a rows x cols mesh, computed with the paper's
// minimum-cost maximum-flow formulation. It is the Figure 4 reference
// MWA is measured against (and too slow to use at runtime, which is
// the point of MWA).
func OptimalCost(rows, cols int, load []int) (int, error) {
	return flow.Cost(topo.NewMesh(rows, cols), load)
}
