package rips

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// JobSpecSchema identifies the versioned job-submission document. The
// ripsd HTTP surface (POST /v1/jobs) and cluster peer-forwarding
// (internal/cluster's SUBMIT frames) decode the identical document, so
// a job can be re-submitted verbatim to any node of a cluster.
const JobSpecSchema = "rips-job/v1"

// JobSpec is the rips-job/v1 document: a registered workload family at
// a size, a rips-result/v1 config object, attributed to a tenant in a
// priority lane. Zero-valued fields take the receiving server's
// defaults (the family's default size, its default backend and machine
// size, the "default" tenant, the normal lane). The schema field is
// optional on input — a bare {"app": "nq"} submission is version 1 —
// and stamped on output.
type JobSpec struct {
	Schema   string     `json:"schema,omitempty"`
	App      string     `json:"app"`
	Size     int        `json:"size,omitempty"`
	Config   ConfigJSON `json:"config"`
	Tenant   string     `json:"tenant,omitempty"`
	Priority string     `json:"priority,omitempty"`
}

// Encode renders the document with its schema stamped — the form to
// POST to a server or forward to a cluster peer.
func (s JobSpec) Encode() ([]byte, error) {
	s.Schema = JobSpecSchema
	b, err := json.Marshal(s)
	if err != nil {
		// Marshal of a struct of strings, numbers and bools cannot fail.
		return nil, fmt.Errorf("rips: encoding job spec: %w", err)
	}
	return b, nil
}

// DecodeJobSpec parses a rips-job/v1 document. Decoding is strict —
// unknown fields and unknown schemas are errors, so a client's typo
// ("procs" at the top level instead of inside "config") fails loudly
// instead of silently running a default — but structural only: enum
// values inside the config decode later (ConfigJSON.Decode), and the
// semantic defaults are the receiving server's to fill in.
func DecodeJobSpec(data []byte) (JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, fmt.Errorf("rips: bad job spec: %w", err)
	}
	if s.Schema != "" && s.Schema != JobSpecSchema {
		return JobSpec{}, fmt.Errorf("rips: job spec schema %q, want %q", s.Schema, JobSpecSchema)
	}
	if err := trailingGarbage(dec); err != nil {
		return JobSpec{}, err
	}
	s.Schema = JobSpecSchema
	return s, nil
}

// trailingGarbage rejects bytes after the document — a concatenation
// accident a lenient decoder would silently drop.
func trailingGarbage(dec *json.Decoder) error {
	if _, err := dec.Token(); err == nil {
		return fmt.Errorf("rips: bad job spec: trailing data after document")
	}
	return nil
}
